//! Factorized GLM training: gradient descent whose per-epoch linear maps run
//! through the normalized matrix instead of the materialized join.

use crate::schema::NormalizedMatrix;
use dm_ml::glm::{self, Family, GdConfig, GlmFit};
use dm_ml::MlError;

/// Train a GLM over the normalized matrix without materializing the join.
///
/// An intercept is handled by the caller (append a ones column to the fact
/// block if desired); this function trains exactly on the logical columns of
/// `nm`.
///
/// Per epoch this costs `O(n·d_S + Σ(n_k·d_k + n))` versus the materialized
/// `O(n·d)` — the factorized-learning speedup measured in experiment E3.
pub fn train_factorized(
    nm: &NormalizedMatrix,
    y: &[f64],
    family: Family,
    cfg: &GdConfig,
) -> Result<GlmFit, MlError> {
    glm::train_gd(|w| nm.gemv(w), |r| nm.vecmat(r), y, nm.cols(), family, cfg)
}

/// Baseline: materialize the join once, then train on the dense matrix.
pub fn train_materialized(
    nm: &NormalizedMatrix,
    y: &[f64],
    family: Family,
    cfg: &GdConfig,
) -> Result<GlmFit, MlError> {
    let x = nm.materialize();
    glm::train_gd(
        |w| dm_matrix::ops::gemv(&x, w),
        |r| dm_matrix::ops::tmv(&x, r),
        y,
        x.cols(),
        family,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DimTable;
    use dm_matrix::Dense;

    /// Star schema with a known linear ground truth on the joined features.
    fn star(n: usize) -> (NormalizedMatrix, Vec<f64>, Vec<f64>) {
        let s = Dense::from_fn(n, 1, |r, _| ((r % 10) as f64) / 10.0);
        let nk = (n / 10).max(2);
        let rk = Dense::from_fn(nk, 2, |g, c| ((g * (c + 1)) % 5) as f64 / 5.0);
        let fk: Vec<usize> = (0..n).map(|r| (r * 3) % nk).collect();
        let nm = NormalizedMatrix::new(s, vec![DimTable::new(rk, fk).unwrap()]).unwrap();
        let truth = vec![2.0, -1.0, 0.5];
        let y = nm.gemv(&truth);
        (nm, truth, y)
    }

    #[test]
    fn factorized_recovers_linear_truth() {
        let (nm, truth, y) = star(300);
        let cfg =
            GdConfig { learning_rate: 0.5, max_iter: 50_000, tol: 1e-10, ..Default::default() };
        let fit = train_factorized(&nm, &y, Family::Gaussian, &cfg).unwrap();
        assert!(fit.converged);
        for (w, t) in fit.weights.iter().zip(&truth) {
            assert!((w - t).abs() < 1e-3, "{:?} vs {:?}", fit.weights, truth);
        }
    }

    #[test]
    fn factorized_and_materialized_agree_exactly() {
        let (nm, _, y) = star(200);
        let cfg = GdConfig { learning_rate: 0.3, max_iter: 500, tol: 1e-12, ..Default::default() };
        let f = train_factorized(&nm, &y, Family::Gaussian, &cfg).unwrap();
        let m = train_materialized(&nm, &y, Family::Gaussian, &cfg).unwrap();
        // Same iterate sequence: identical weights to floating-point noise.
        assert_eq!(f.iterations, m.iterations);
        for (a, b) in f.weights.iter().zip(&m.weights) {
            assert!((a - b).abs() < 1e-9, "factorized and materialized GD must coincide");
        }
    }

    #[test]
    fn logistic_factorized_agrees_with_materialized() {
        let (nm, _, score) = star(200);
        let y: Vec<f64> = score.iter().map(|&s| if s > 0.5 { 1.0 } else { 0.0 }).collect();
        // Guard against a degenerate label split.
        let pos = y.iter().filter(|&&v| v == 1.0).count();
        assert!(pos > 10 && pos < 190);
        let cfg = GdConfig { learning_rate: 0.5, max_iter: 300, tol: 1e-12, ..Default::default() };
        let f = train_factorized(&nm, &y, Family::Binomial, &cfg).unwrap();
        let m = train_materialized(&nm, &y, Family::Binomial, &cfg).unwrap();
        for (a, b) in f.weights.iter().zip(&m.weights) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn factorized_handles_high_redundancy() {
        // 1000 fact rows over a 3-row dimension table: redundancy 333x.
        let s = Dense::from_fn(1000, 1, |r, _| (r % 7) as f64 / 7.0);
        let rk = Dense::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let fk = (0..1000).map(|r| r % 3).collect();
        let nm = NormalizedMatrix::new(s, vec![DimTable::new(rk, fk).unwrap()]).unwrap();
        let y = nm.gemv(&[1.0, 1.0]);
        let cfg =
            GdConfig { learning_rate: 0.2, max_iter: 20_000, tol: 1e-9, ..Default::default() };
        let fit = train_factorized(&nm, &y, Family::Gaussian, &cfg).unwrap();
        let pred = nm.gemv(&fit.weights);
        let mse: f64 =
            pred.iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / y.len() as f64;
        assert!(mse < 1e-6, "mse {mse}");
    }
}
