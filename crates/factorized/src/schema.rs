//! The normalized-matrix representation of a star-schema join.

use dm_matrix::Dense;
use std::fmt;

/// Errors in constructing or converting normalized matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorizedError {
    /// A foreign-key value references a nonexistent dimension row.
    DanglingKey {
        /// Index of the dimension table.
        table: usize,
        /// Position of the offending fact row.
        fact_row: usize,
        /// The dangling key value.
        key: usize,
    },
    /// Foreign-key vector length disagrees with the fact-table row count.
    KeyLength {
        /// Index of the dimension table.
        table: usize,
        /// Foreign-key vector length.
        keys: usize,
        /// Fact-table row count.
        fact_rows: usize,
    },
    /// The construction would produce an empty feature matrix.
    Empty,
    /// A relational-source conversion failed (unknown column, bad type, ...).
    Source(String),
}

impl fmt::Display for FactorizedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorizedError::DanglingKey { table, fact_row, key } => {
                write!(
                    f,
                    "fact row {fact_row} references missing row {key} of dimension table {table}"
                )
            }
            FactorizedError::KeyLength { table, keys, fact_rows } => {
                write!(f, "dimension table {table} has {keys} keys for {fact_rows} fact rows")
            }
            FactorizedError::Empty => write!(f, "normalized matrix would have no features"),
            FactorizedError::Source(m) => write!(f, "source conversion failed: {m}"),
        }
    }
}

impl std::error::Error for FactorizedError {}

/// One dimension table: its feature block plus the foreign-key map from fact
/// rows to dimension rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DimTable {
    /// `n_k x d_k` dimension features.
    pub features: Dense,
    /// For each fact row, the referenced dimension row.
    pub fk: Vec<usize>,
}

impl DimTable {
    /// Construct, validating that every key lands inside the table.
    pub fn new(features: Dense, fk: Vec<usize>) -> Result<Self, FactorizedError> {
        for (i, &k) in fk.iter().enumerate() {
            if k >= features.rows() {
                return Err(FactorizedError::DanglingKey { table: 0, fact_row: i, key: k });
            }
        }
        Ok(DimTable { features, fk })
    }
}

/// A feature matrix stored in normalized form:
/// `X = [ S | K_1 R_1 | ... | K_q R_q ]` where `S` is the fact-table feature
/// block and `K_k` is the indicator matrix of foreign key `k`.
///
/// The logical shape is `n x (d_S + Σ d_k)`; the physical footprint is
/// `n·d_S + Σ n_k·d_k + q·n` — the redundancy `n/n_k` of each joined block is
/// never materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedMatrix {
    /// Fact-table feature block, `n x d_S` (`d_S` may be 0).
    pub s: Dense,
    /// Dimension tables in column order.
    pub tables: Vec<DimTable>,
}

impl NormalizedMatrix {
    /// Construct, validating key lengths and non-emptiness.
    pub fn new(s: Dense, tables: Vec<DimTable>) -> Result<Self, FactorizedError> {
        let n = s.rows();
        for (t, dt) in tables.iter().enumerate() {
            if dt.fk.len() != n {
                return Err(FactorizedError::KeyLength {
                    table: t,
                    keys: dt.fk.len(),
                    fact_rows: n,
                });
            }
            for (i, &k) in dt.fk.iter().enumerate() {
                if k >= dt.features.rows() {
                    return Err(FactorizedError::DanglingKey { table: t, fact_row: i, key: k });
                }
            }
        }
        let total_cols = s.cols() + tables.iter().map(|t| t.features.cols()).sum::<usize>();
        if n == 0 || total_cols == 0 {
            return Err(FactorizedError::Empty);
        }
        Ok(NormalizedMatrix { s, tables })
    }

    /// Number of logical (fact) rows.
    pub fn rows(&self) -> usize {
        self.s.rows()
    }

    /// Number of logical columns across all blocks.
    pub fn cols(&self) -> usize {
        self.s.cols() + self.tables.iter().map(|t| t.features.cols()).sum::<usize>()
    }

    /// Physical cell count (what normalized storage actually holds).
    pub fn physical_cells(&self) -> usize {
        self.s.rows() * self.s.cols()
            + self
                .tables
                .iter()
                .map(|t| t.features.rows() * t.features.cols() + t.fk.len())
                .sum::<usize>()
    }

    /// Logical cell count of the materialized join.
    pub fn logical_cells(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Redundancy ratio `logical / physical` — the factor factorized
    /// computation avoids.
    pub fn redundancy_ratio(&self) -> f64 {
        self.logical_cells() as f64 / self.physical_cells().max(1) as f64
    }

    /// Materialize the join into a dense feature matrix (the baseline the
    /// factorized operators are measured against).
    pub fn materialize(&self) -> Dense {
        let n = self.rows();
        let d = self.cols();
        let mut out = Dense::zeros(n, d);
        for r in 0..n {
            let dst = out.row_mut(r);
            let mut off = self.s.cols();
            dst[..off].copy_from_slice(self.s.row(r));
            for t in &self.tables {
                let src = t.features.row(t.fk[r]);
                dst[off..off + src.len()].copy_from_slice(src);
                off += src.len();
            }
        }
        out
    }

    /// Build from relational tables: a fact table with numeric feature
    /// columns and one `(dim_table, fk_column, dim_feature_columns)` triple
    /// per dimension. Keys are matched on the dimension's `key_column`
    /// (integer values).
    pub fn from_tables(
        fact: &dm_rel::Table,
        fact_features: &[&str],
        dims: &[(&dm_rel::Table, &str, &str, &[&str])],
    ) -> Result<Self, FactorizedError> {
        let s = fact.to_dense(fact_features).map_err(|e| FactorizedError::Source(e.to_string()))?;
        let mut tables = Vec::with_capacity(dims.len());
        for (t, (dim, fk_col, key_col, feat_cols)) in dims.iter().enumerate() {
            let features =
                dim.to_dense(feat_cols).map_err(|e| FactorizedError::Source(e.to_string()))?;
            // Key -> dimension row index.
            let keycol =
                dim.column_by_name(key_col).map_err(|e| FactorizedError::Source(e.to_string()))?;
            let mut index = std::collections::HashMap::new();
            for r in 0..dim.num_rows() {
                if let Some(k) = keycol.get_i64(r) {
                    index.insert(k, r);
                }
            }
            let fkcol =
                fact.column_by_name(fk_col).map_err(|e| FactorizedError::Source(e.to_string()))?;
            let mut fk = Vec::with_capacity(fact.num_rows());
            for r in 0..fact.num_rows() {
                let key = fkcol.get_i64(r).ok_or(FactorizedError::Source(format!(
                    "NULL or non-integer key at fact row {r}"
                )))?;
                let row = *index.get(&key).ok_or(FactorizedError::DanglingKey {
                    table: t,
                    fact_row: r,
                    key: key.max(0) as usize,
                })?;
                fk.push(row);
            }
            tables.push(DimTable { features, fk });
        }
        NormalizedMatrix::new(s, tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table() -> NormalizedMatrix {
        let s = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let r1 = Dense::from_rows(&[&[10.0], &[20.0]]);
        let r2 = Dense::from_rows(&[&[0.1, 0.2], &[0.3, 0.4], &[0.5, 0.6]]);
        NormalizedMatrix::new(
            s,
            vec![
                DimTable::new(r1, vec![0, 1, 1, 0]).unwrap(),
                DimTable::new(r2, vec![2, 0, 1, 2]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_and_ratios() {
        let nm = two_table();
        assert_eq!(nm.rows(), 4);
        assert_eq!(nm.cols(), 5);
        assert_eq!(nm.logical_cells(), 20);
        // physical: s 8 + (r1 2 + fk 4) + (r2 6 + fk 4) = 24
        assert_eq!(nm.physical_cells(), 24);
        assert!((nm.redundancy_ratio() - 20.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn materialize_gathers_dimension_rows() {
        let nm = two_table();
        let m = nm.materialize();
        assert_eq!(m.row(0), &[1.0, 2.0, 10.0, 0.5, 0.6]);
        assert_eq!(m.row(1), &[3.0, 4.0, 20.0, 0.1, 0.2]);
        assert_eq!(m.row(3), &[7.0, 8.0, 10.0, 0.5, 0.6]);
    }

    #[test]
    fn dangling_key_rejected() {
        let r = Dense::from_rows(&[&[1.0]]);
        assert!(matches!(
            DimTable::new(r.clone(), vec![0, 1]),
            Err(FactorizedError::DanglingKey { .. })
        ));
        let s = Dense::from_rows(&[&[1.0], &[2.0]]);
        let dt = DimTable { features: r, fk: vec![0, 5] };
        assert!(matches!(
            NormalizedMatrix::new(s, vec![dt]),
            Err(FactorizedError::DanglingKey { .. })
        ));
    }

    #[test]
    fn key_length_mismatch_rejected() {
        let s = Dense::from_rows(&[&[1.0], &[2.0]]);
        let r = Dense::from_rows(&[&[1.0]]);
        let dt = DimTable { features: r, fk: vec![0] };
        assert!(matches!(
            NormalizedMatrix::new(s, vec![dt]),
            Err(FactorizedError::KeyLength { keys: 1, fact_rows: 2, .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            NormalizedMatrix::new(Dense::zeros(0, 2), vec![]),
            Err(FactorizedError::Empty)
        ));
        assert!(matches!(
            NormalizedMatrix::new(Dense::zeros(3, 0), vec![]),
            Err(FactorizedError::Empty)
        ));
    }

    #[test]
    fn fact_only_matrix_works() {
        let s = Dense::from_rows(&[&[1.0], &[2.0]]);
        let nm = NormalizedMatrix::new(s.clone(), vec![]).unwrap();
        assert_eq!(nm.materialize(), s);
        assert!((nm.redundancy_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_relational_tables() {
        use dm_rel::{Table, Value};
        let mut fact = Table::builder("orders").float64("amount").int64("cust").build();
        fact.push_row(vec![5.0.into(), 11.into()]).unwrap();
        fact.push_row(vec![7.0.into(), 12.into()]).unwrap();
        fact.push_row(vec![9.0.into(), 11.into()]).unwrap();
        let mut dim = Table::builder("cust").int64("id").float64("age").float64("income").build();
        dim.push_row(vec![11.into(), 30.0.into(), 50.0.into()]).unwrap();
        dim.push_row(vec![12.into(), 40.0.into(), 60.0.into()]).unwrap();

        let nm = NormalizedMatrix::from_tables(
            &fact,
            &["amount"],
            &[(&dim, "cust", "id", &["age", "income"][..])],
        )
        .unwrap();
        let m = nm.materialize();
        assert_eq!(m.row(0), &[5.0, 30.0, 50.0]);
        assert_eq!(m.row(1), &[7.0, 40.0, 60.0]);
        assert_eq!(m.row(2), &[9.0, 30.0, 50.0]);

        // Dangling key in the fact table is caught.
        fact.push_row(vec![Value::Float64(1.0), Value::Int64(99)]).unwrap();
        assert!(matches!(
            NormalizedMatrix::from_tables(
                &fact,
                &["amount"],
                &[(&dim, "cust", "id", &["age"][..])]
            ),
            Err(FactorizedError::DanglingKey { .. })
        ));
    }
}
