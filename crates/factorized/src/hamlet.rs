//! Join avoidance: deciding when a key-foreign-key join adds no predictive
//! signal beyond the foreign key itself.
//!
//! In a KFK join, the foreign key functionally determines every joined
//! dimension feature, so a model over (fact features + FK as a categorical
//! feature) can represent anything a model over the joined features can. The
//! question is statistical, not representational: a high-cardinality FK can
//! overfit where the (lower-dimensional) joined features would not. The
//! decision rules here follow that analysis — avoid the join when there are
//! enough training rows *per dimension row* for the FK representation to be
//! safe.

use crate::schema::NormalizedMatrix;

/// Inputs to the join-avoidance decision for one dimension table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinProfile {
    /// Fact-table (training) rows, `n_S`.
    pub fact_rows: usize,
    /// Dimension-table rows, `n_R` (also the FK's domain size).
    pub dim_rows: usize,
    /// Number of features the join would bring in, `d_R`.
    pub dim_features: usize,
}

impl JoinProfile {
    /// Tuple ratio `n_S / n_R`: average training rows per FK value.
    pub fn tuple_ratio(&self) -> f64 {
        self.fact_rows as f64 / self.dim_rows.max(1) as f64
    }
}

/// Outcome of a join-avoidance rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Drop the join: keep only the FK (dummy-coded) on the fact side.
    AvoidJoin,
    /// Perform (or factorize) the join: the dimension features are needed.
    KeepJoin,
}

/// The conservative "rule of thumb": avoid the join when the tuple ratio is
/// at least `threshold` (the canonical setting is 20).
pub fn tuple_ratio_rule(p: &JoinProfile, threshold: f64) -> Decision {
    if p.tuple_ratio() >= threshold {
        Decision::AvoidJoin
    } else {
        Decision::KeepJoin
    }
}

/// The risk-based rule: compare binary-hypothesis-space capacities of the two
/// representations. The FK representation has roughly `n_R` degrees of
/// freedom; the joined representation has `d_R`. Avoiding the join is safe
/// when the *extra* capacity the FK brings is small relative to the training
/// set: `n_R - d_R <= n_S / rows_per_dof`.
///
/// `rows_per_dof` controls conservatism: higher demands more evidence per
/// extra degree of freedom (default 10).
pub fn risk_rule(p: &JoinProfile, rows_per_dof: f64) -> Decision {
    let extra_dof = p.dim_rows.saturating_sub(p.dim_features) as f64;
    if extra_dof * rows_per_dof <= p.fact_rows as f64 {
        Decision::AvoidJoin
    } else {
        Decision::KeepJoin
    }
}

/// Profile every dimension table of a normalized matrix.
pub fn profile_tables(nm: &NormalizedMatrix) -> Vec<JoinProfile> {
    nm.tables
        .iter()
        .map(|t| JoinProfile {
            fact_rows: nm.rows(),
            dim_rows: t.features.rows(),
            dim_features: t.features.cols(),
        })
        .collect()
}

/// Replace a dimension table's features with a dummy-coded (one-hot) foreign
/// key: the "avoided join" representation used by experiment E9.
///
/// Returns an `n x n_R` indicator matrix.
pub fn fk_one_hot(fk: &[usize], dim_rows: usize) -> dm_matrix::Dense {
    let mut out = dm_matrix::Dense::zeros(fk.len(), dim_rows);
    for (r, &g) in fk.iter().enumerate() {
        out.set(r, g, 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DimTable;
    use dm_matrix::Dense;

    #[test]
    fn tuple_ratio_math() {
        let p = JoinProfile { fact_rows: 1000, dim_rows: 50, dim_features: 4 };
        assert!((p.tuple_ratio() - 20.0).abs() < 1e-12);
        assert_eq!(tuple_ratio_rule(&p, 20.0), Decision::AvoidJoin);
        assert_eq!(tuple_ratio_rule(&p, 21.0), Decision::KeepJoin);
    }

    #[test]
    fn risk_rule_tracks_extra_capacity() {
        // FK domain barely larger than the features it replaces: safe.
        let small = JoinProfile { fact_rows: 100, dim_rows: 10, dim_features: 8 };
        assert_eq!(risk_rule(&small, 10.0), Decision::AvoidJoin);
        // Huge FK domain with few rows: unsafe.
        let big = JoinProfile { fact_rows: 100, dim_rows: 500, dim_features: 8 };
        assert_eq!(risk_rule(&big, 10.0), Decision::KeepJoin);
        // More training data flips the decision.
        let big_n = JoinProfile { fact_rows: 100_000, dim_rows: 500, dim_features: 8 };
        assert_eq!(risk_rule(&big_n, 10.0), Decision::AvoidJoin);
    }

    #[test]
    fn zero_dim_rows_does_not_divide_by_zero() {
        let p = JoinProfile { fact_rows: 10, dim_rows: 0, dim_features: 0 };
        assert!(p.tuple_ratio().is_finite());
    }

    #[test]
    fn profile_reads_normalized_matrix() {
        let s = Dense::from_fn(40, 1, |r, _| r as f64);
        let r1 = Dense::from_fn(4, 3, |g, c| (g + c) as f64);
        let fk = (0..40).map(|i| i % 4).collect();
        let nm = NormalizedMatrix::new(s, vec![DimTable::new(r1, fk).unwrap()]).unwrap();
        let profiles = profile_tables(&nm);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0], JoinProfile { fact_rows: 40, dim_rows: 4, dim_features: 3 });
        assert!((profiles[0].tuple_ratio() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn one_hot_is_an_indicator() {
        let oh = fk_one_hot(&[1, 0, 2, 1], 3);
        assert_eq!(oh.shape(), (4, 3));
        for r in 0..4 {
            let row = oh.row(r);
            assert_eq!(row.iter().sum::<f64>(), 1.0, "exactly one indicator per row");
        }
        assert_eq!(oh.get(0, 1), 1.0);
        assert_eq!(oh.get(3, 1), 1.0);
    }

    #[test]
    fn fk_representation_subsumes_joined_features() {
        // Any linear model over joined features R has an equivalent linear
        // model over the one-hot FK: w_oh[g] = R[g] · w_R.
        let r = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let fk: Vec<usize> = vec![0, 1, 2, 1, 0];
        let w_r = [0.5, -1.5];
        // Joined prediction.
        let joined: Vec<f64> =
            fk.iter().map(|&g| r.row(g).iter().zip(&w_r).map(|(a, b)| a * b).sum()).collect();
        // One-hot prediction with induced weights.
        let w_oh: Vec<f64> =
            (0..3).map(|g| r.row(g).iter().zip(&w_r).map(|(a, b)| a * b).sum()).collect();
        let oh = fk_one_hot(&fk, 3);
        let via_oh = dm_matrix::ops::gemv(&oh, &w_oh);
        for (a, b) in joined.iter().zip(&via_oh) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
