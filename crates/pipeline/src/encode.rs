//! Featurization from relational tables to matrices: numeric passthrough,
//! one-hot encoding, and feature hashing.

use crate::PipelineError;
use dm_matrix::Dense;
use dm_rel::{DataType, Table};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// How one source column becomes features.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// A numeric column used as-is (NULL becomes NaN — pair with an
    /// [`crate::transform::Imputer`]).
    Numeric(String),
    /// A categorical column dummy-coded over the categories seen at fit time;
    /// unseen test categories encode to all-zeros.
    OneHot(String),
    /// A string column hashed into `buckets` columns with a sign hash
    /// (the feature-hashing trick for unbounded vocabularies).
    Hashed {
        /// Source column name.
        column: String,
        /// Number of output buckets.
        buckets: usize,
    },
}

/// A fitted featurizer mapping a [`Table`] to a [`Dense`] matrix.
#[derive(Debug, Clone)]
pub struct Featurizer {
    specs: Vec<ColumnSpec>,
    /// Per one-hot column: category -> output offset within the block.
    vocabularies: Vec<HashMap<String, usize>>,
    /// Output feature names, in column order.
    feature_names: Vec<String>,
}

fn hash_bucket(value: &str, buckets: usize) -> (usize, f64) {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    let code = h.finish();
    let bucket = (code % buckets as u64) as usize;
    // Sign hash: unbiases collisions (Weinberger et al. trick).
    let sign = if (code >> 63) == 1 { -1.0 } else { 1.0 };
    (bucket, sign)
}

impl Featurizer {
    /// Fit a featurizer: validates specs against the schema and collects
    /// one-hot vocabularies from the training table.
    pub fn fit(table: &Table, specs: &[ColumnSpec]) -> Result<Self, PipelineError> {
        if specs.is_empty() {
            return Err(PipelineError::BadParam("no column specs".into()));
        }
        let mut vocabularies = Vec::new();
        let mut feature_names = Vec::new();
        for spec in specs {
            match spec {
                ColumnSpec::Numeric(name) => {
                    let col = table
                        .column_by_name(name)
                        .map_err(|e| PipelineError::Encode(e.to_string()))?;
                    if col.dtype() == DataType::Str {
                        return Err(PipelineError::Encode(format!(
                            "column {name} is a string; use OneHot or Hashed"
                        )));
                    }
                    feature_names.push(name.clone());
                }
                ColumnSpec::OneHot(name) => {
                    let col = table
                        .column_by_name(name)
                        .map_err(|e| PipelineError::Encode(e.to_string()))?;
                    let mut vocab: HashMap<String, usize> = HashMap::new();
                    let mut ordered: Vec<String> = Vec::new();
                    for r in 0..table.num_rows() {
                        let key = match col.get_str(r) {
                            Some(s) => s.to_owned(),
                            None => match col.get_i64(r) {
                                Some(i) => i.to_string(),
                                None => continue, // NULL: contributes no category
                            },
                        };
                        if !vocab.contains_key(&key) {
                            vocab.insert(key.clone(), ordered.len());
                            ordered.push(key);
                        }
                    }
                    if ordered.is_empty() {
                        return Err(PipelineError::Encode(format!(
                            "one-hot column {name} has no non-NULL categories"
                        )));
                    }
                    for cat in &ordered {
                        feature_names.push(format!("{name}={cat}"));
                    }
                    vocabularies.push(vocab);
                }
                ColumnSpec::Hashed { column, buckets } => {
                    if *buckets == 0 {
                        return Err(PipelineError::BadParam(
                            "hash buckets must be positive".into(),
                        ));
                    }
                    table
                        .column_by_name(column)
                        .map_err(|e| PipelineError::Encode(e.to_string()))?;
                    for b in 0..*buckets {
                        feature_names.push(format!("{column}#h{b}"));
                    }
                }
            }
        }
        Ok(Featurizer { specs: specs.to_vec(), vocabularies, feature_names })
    }

    /// Total number of output features.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Output feature names in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Encode a table (train or test) into a dense feature matrix.
    pub fn transform(&self, table: &Table) -> Result<Dense, PipelineError> {
        let n = table.num_rows();
        let mut out = Dense::zeros(n, self.num_features());
        let mut vocab_idx = 0;
        let mut offset = 0;
        for spec in &self.specs {
            match spec {
                ColumnSpec::Numeric(name) => {
                    let col = table
                        .column_by_name(name)
                        .map_err(|e| PipelineError::Encode(e.to_string()))?;
                    for r in 0..n {
                        out.set(r, offset, col.get_f64(r).unwrap_or(f64::NAN));
                    }
                    offset += 1;
                }
                ColumnSpec::OneHot(name) => {
                    let col = table
                        .column_by_name(name)
                        .map_err(|e| PipelineError::Encode(e.to_string()))?;
                    let vocab = &self.vocabularies[vocab_idx];
                    for r in 0..n {
                        let key = match col.get_str(r) {
                            Some(s) => Some(s.to_owned()),
                            None => col.get_i64(r).map(|i| i.to_string()),
                        };
                        if let Some(k) = key {
                            if let Some(&slot) = vocab.get(&k) {
                                out.set(r, offset + slot, 1.0);
                            }
                            // Unseen category: all-zero block.
                        }
                    }
                    offset += vocab.len();
                    vocab_idx += 1;
                }
                ColumnSpec::Hashed { column, buckets } => {
                    let col = table
                        .column_by_name(column)
                        .map_err(|e| PipelineError::Encode(e.to_string()))?;
                    for r in 0..n {
                        let key = match col.get_str(r) {
                            Some(s) => s.to_owned(),
                            None => match col.get_i64(r) {
                                Some(i) => i.to_string(),
                                None => continue,
                            },
                        };
                        let (bucket, sign) = hash_bucket(&key, *buckets);
                        let cur = out.get(r, offset + bucket);
                        out.set(r, offset + bucket, cur + sign);
                    }
                    offset += buckets;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_rel::Value;

    fn people() -> Table {
        let mut t =
            Table::builder("t").float64("age").string("city").string("tag").int64("grade").build();
        t.push_row(vec![30.0.into(), "paris".into(), "a".into(), 1.into()]).unwrap();
        t.push_row(vec![40.0.into(), "lyon".into(), "b".into(), 2.into()]).unwrap();
        t.push_row(vec![Value::Null, "paris".into(), "c".into(), 1.into()]).unwrap();
        t
    }

    #[test]
    fn numeric_passthrough_with_nan() {
        let t = people();
        let f = Featurizer::fit(&t, &[ColumnSpec::Numeric("age".into())]).unwrap();
        let m = f.transform(&t).unwrap();
        assert_eq!(m.shape(), (3, 1));
        assert_eq!(m.get(0, 0), 30.0);
        assert!(m.get(2, 0).is_nan());
    }

    #[test]
    fn one_hot_vocabulary_order() {
        let t = people();
        let f = Featurizer::fit(&t, &[ColumnSpec::OneHot("city".into())]).unwrap();
        assert_eq!(f.feature_names(), &["city=paris".to_string(), "city=lyon".to_string()]);
        let m = f.transform(&t).unwrap();
        assert_eq!(m.row(0), &[1.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 1.0]);
        assert_eq!(m.row(2), &[1.0, 0.0]);
    }

    #[test]
    fn one_hot_integer_categories() {
        let t = people();
        let f = Featurizer::fit(&t, &[ColumnSpec::OneHot("grade".into())]).unwrap();
        assert_eq!(f.num_features(), 2);
        let m = f.transform(&t).unwrap();
        assert_eq!(m.row(2), &[1.0, 0.0]);
    }

    #[test]
    fn unseen_category_encodes_to_zeros() {
        let t = people();
        let f = Featurizer::fit(&t, &[ColumnSpec::OneHot("city".into())]).unwrap();
        let mut test =
            Table::builder("t").float64("age").string("city").string("tag").int64("grade").build();
        test.push_row(vec![1.0.into(), "tokyo".into(), "z".into(), 9.into()]).unwrap();
        let m = f.transform(&test).unwrap();
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn hashing_deterministic_and_bounded() {
        let t = people();
        let f = Featurizer::fit(&t, &[ColumnSpec::Hashed { column: "tag".into(), buckets: 4 }])
            .unwrap();
        assert_eq!(f.num_features(), 4);
        let m1 = f.transform(&t).unwrap();
        let m2 = f.transform(&t).unwrap();
        assert_eq!(m1, m2, "hashing must be deterministic");
        for r in 0..3 {
            let nnz = m1.row(r).iter().filter(|v| **v != 0.0).count();
            assert_eq!(nnz, 1, "one bucket per value");
            assert!(m1.row(r).iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn mixed_spec_layout() {
        let t = people();
        let f = Featurizer::fit(
            &t,
            &[
                ColumnSpec::Numeric("age".into()),
                ColumnSpec::OneHot("city".into()),
                ColumnSpec::Hashed { column: "tag".into(), buckets: 3 },
            ],
        )
        .unwrap();
        assert_eq!(f.num_features(), 1 + 2 + 3);
        let m = f.transform(&t).unwrap();
        assert_eq!(m.get(1, 0), 40.0);
        assert_eq!(m.get(1, 2), 1.0); // city=lyon slot
    }

    #[test]
    fn validation_errors() {
        let t = people();
        assert!(matches!(Featurizer::fit(&t, &[]), Err(PipelineError::BadParam(_))));
        assert!(matches!(
            Featurizer::fit(&t, &[ColumnSpec::Numeric("ghost".into())]),
            Err(PipelineError::Encode(_))
        ));
        assert!(matches!(
            Featurizer::fit(&t, &[ColumnSpec::Numeric("city".into())]),
            Err(PipelineError::Encode(_)),
        ));
        assert!(matches!(
            Featurizer::fit(&t, &[ColumnSpec::Hashed { column: "tag".into(), buckets: 0 }]),
            Err(PipelineError::BadParam(_))
        ));
    }

    #[test]
    fn all_null_one_hot_rejected() {
        let mut t = Table::builder("t").string("s").build();
        t.push_row(vec![Value::Null]).unwrap();
        assert!(matches!(
            Featurizer::fit(&t, &[ColumnSpec::OneHot("s".into())]),
            Err(PipelineError::Encode(_))
        ));
    }
}
