//! Fit/transform feature transformers and the pipeline that composes them.

use crate::PipelineError;
use dm_matrix::{ops, Dense};

/// A stateful feature transformer with separate fit and transform phases, so
/// statistics learned on training data are applied unchanged at test time
/// (the train/test-leakage discipline of lifecycle systems).
pub trait Transformer {
    /// Learn transformation parameters from training data.
    fn fit(&mut self, x: &Dense) -> Result<(), PipelineError>;
    /// Apply the learned transformation.
    fn transform(&self, x: &Dense) -> Result<Dense, PipelineError>;
    /// Human-readable name (used in error messages and provenance logs).
    fn name(&self) -> &'static str;
}

/// Z-score standardization: `(x - mean) / std` per column.
///
/// Zero-variance columns are mapped to 0 (their std divisor is clamped to 1).
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    stats: Option<(Vec<f64>, Vec<f64>)>, // (means, stds)
}

impl StandardScaler {
    /// New unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transformer for StandardScaler {
    fn fit(&mut self, x: &Dense) -> Result<(), PipelineError> {
        let means = ops::col_means(x);
        let stds: Vec<f64> = ops::col_vars(x)
            .into_iter()
            .map(|v| {
                let s = v.sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        self.stats = Some((means, stds));
        Ok(())
    }

    fn transform(&self, x: &Dense) -> Result<Dense, PipelineError> {
        let (means, stds) =
            self.stats.as_ref().ok_or(PipelineError::NotFitted("StandardScaler"))?;
        if x.cols() != means.len() {
            return Err(PipelineError::Shape(format!(
                "fitted on {} columns, got {}",
                means.len(),
                x.cols()
            )));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, &m), &s) in out.row_mut(r).iter_mut().zip(means).zip(stds) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "StandardScaler"
    }
}

/// Min-max scaling to `[0, 1]` per column (constant columns map to 0).
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    bounds: Option<(Vec<f64>, Vec<f64>)>, // (mins, ranges)
}

impl MinMaxScaler {
    /// New unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transformer for MinMaxScaler {
    fn fit(&mut self, x: &Dense) -> Result<(), PipelineError> {
        let d = x.cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for r in 0..x.rows() {
            for ((mn, mx), &v) in mins.iter_mut().zip(&mut maxs).zip(x.row(r)) {
                *mn = mn.min(v);
                *mx = mx.max(v);
            }
        }
        let ranges: Vec<f64> =
            mins.iter().zip(&maxs).map(|(&mn, &mx)| if mx > mn { mx - mn } else { 1.0 }).collect();
        self.bounds = Some((mins, ranges));
        Ok(())
    }

    fn transform(&self, x: &Dense) -> Result<Dense, PipelineError> {
        let (mins, ranges) =
            self.bounds.as_ref().ok_or(PipelineError::NotFitted("MinMaxScaler"))?;
        if x.cols() != mins.len() {
            return Err(PipelineError::Shape(format!(
                "fitted on {} columns, got {}",
                mins.len(),
                x.cols()
            )));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, &mn), &rg) in out.row_mut(r).iter_mut().zip(mins).zip(ranges) {
                *v = (*v - mn) / rg;
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "MinMaxScaler"
    }
}

/// How [`Imputer`] fills NaN cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImputeStrategy {
    /// Column mean over non-NaN training values.
    Mean,
    /// Column median over non-NaN training values.
    Median,
    /// A fixed constant.
    Constant(f64),
}

/// Replace NaN cells with a per-column statistic learned at fit time.
#[derive(Debug, Clone)]
pub struct Imputer {
    strategy: ImputeStrategy,
    fill: Option<Vec<f64>>,
}

impl Imputer {
    /// New unfitted imputer.
    pub fn new(strategy: ImputeStrategy) -> Self {
        Imputer { strategy, fill: None }
    }
}

impl Transformer for Imputer {
    fn fit(&mut self, x: &Dense) -> Result<(), PipelineError> {
        let d = x.cols();
        let mut fill = Vec::with_capacity(d);
        for c in 0..d {
            let vals: Vec<f64> =
                (0..x.rows()).map(|r| x.get(r, c)).filter(|v| !v.is_nan()).collect();
            let v = match self.strategy {
                ImputeStrategy::Constant(k) => k,
                ImputeStrategy::Mean => {
                    if vals.is_empty() {
                        0.0
                    } else {
                        vals.iter().sum::<f64>() / vals.len() as f64
                    }
                }
                ImputeStrategy::Median => {
                    if vals.is_empty() {
                        0.0
                    } else {
                        let mut s = vals.clone();
                        s.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN by filter"));
                        let mid = s.len() / 2;
                        if s.len() % 2 == 1 {
                            s[mid]
                        } else {
                            (s[mid - 1] + s[mid]) / 2.0
                        }
                    }
                }
            };
            fill.push(v);
        }
        self.fill = Some(fill);
        Ok(())
    }

    fn transform(&self, x: &Dense) -> Result<Dense, PipelineError> {
        let fill = self.fill.as_ref().ok_or(PipelineError::NotFitted("Imputer"))?;
        if x.cols() != fill.len() {
            return Err(PipelineError::Shape(format!(
                "fitted on {} columns, got {}",
                fill.len(),
                x.cols()
            )));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for (v, &f) in out.row_mut(r).iter_mut().zip(fill) {
                if v.is_nan() {
                    *v = f;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "Imputer"
    }
}

/// Equal-width binning: each column is discretized into `bins` integer codes
/// `0..bins`, with bin edges learned from training min/max.
#[derive(Debug, Clone)]
pub struct Binner {
    bins: usize,
    edges: Option<(Vec<f64>, Vec<f64>)>, // (mins, widths)
}

impl Binner {
    /// New unfitted binner; `bins` must be at least 2.
    pub fn new(bins: usize) -> Self {
        Binner { bins, edges: None }
    }
}

impl Transformer for Binner {
    fn fit(&mut self, x: &Dense) -> Result<(), PipelineError> {
        if self.bins < 2 {
            return Err(PipelineError::BadParam(format!("bins must be >= 2, got {}", self.bins)));
        }
        let d = x.cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for r in 0..x.rows() {
            for ((mn, mx), &v) in mins.iter_mut().zip(&mut maxs).zip(x.row(r)) {
                *mn = mn.min(v);
                *mx = mx.max(v);
            }
        }
        let widths: Vec<f64> = mins
            .iter()
            .zip(&maxs)
            .map(|(&mn, &mx)| {
                let w = (mx - mn) / self.bins as f64;
                if w > 0.0 {
                    w
                } else {
                    1.0
                }
            })
            .collect();
        self.edges = Some((mins, widths));
        Ok(())
    }

    fn transform(&self, x: &Dense) -> Result<Dense, PipelineError> {
        let (mins, widths) = self.edges.as_ref().ok_or(PipelineError::NotFitted("Binner"))?;
        if x.cols() != mins.len() {
            return Err(PipelineError::Shape(format!(
                "fitted on {} columns, got {}",
                mins.len(),
                x.cols()
            )));
        }
        let top = (self.bins - 1) as f64;
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, &mn), &w) in out.row_mut(r).iter_mut().zip(mins).zip(widths) {
                *v = (((*v - mn) / w).floor()).clamp(0.0, top);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "Binner"
    }
}

/// Degree-2 polynomial feature expansion: emits the original features,
/// all squares, and all pairwise interaction terms (in that order), letting
/// linear models capture curvature — the standard feature-engineering tool
/// whose blow-up in column count motivates factorized and compressed
/// representations downstream.
#[derive(Debug, Clone, Default)]
pub struct PolynomialFeatures {
    input_cols: Option<usize>,
}

impl PolynomialFeatures {
    /// New unfitted expander.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of output features for `d` inputs: `d + d + d*(d-1)/2`.
    pub fn output_cols(d: usize) -> usize {
        d + d + d * d.saturating_sub(1) / 2
    }
}

impl Transformer for PolynomialFeatures {
    fn fit(&mut self, x: &Dense) -> Result<(), PipelineError> {
        self.input_cols = Some(x.cols());
        Ok(())
    }

    fn transform(&self, x: &Dense) -> Result<Dense, PipelineError> {
        let d = self.input_cols.ok_or(PipelineError::NotFitted("PolynomialFeatures"))?;
        if x.cols() != d {
            return Err(PipelineError::Shape(format!("fitted on {d} columns, got {}", x.cols())));
        }
        let out_d = Self::output_cols(d);
        let mut out = Dense::zeros(x.rows(), out_d);
        for r in 0..x.rows() {
            let src = x.row(r).to_vec();
            let dst = out.row_mut(r);
            dst[..d].copy_from_slice(&src);
            for (j, &v) in src.iter().enumerate() {
                dst[d + j] = v * v;
            }
            let mut k = 2 * d;
            for i in 0..d {
                for j in (i + 1)..d {
                    dst[k] = src[i] * src[j];
                    k += 1;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "PolynomialFeatures"
    }
}

/// A sequential chain of transformers applied left to right.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Transformer>>,
}

impl Pipeline {
    /// New empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stage.
    #[allow(clippy::should_implement_trait)] // builder-style `add`, not arithmetic
    pub fn add(mut self, t: impl Transformer + 'static) -> Self {
        self.stages.push(Box::new(t));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Fit each stage on the output of the previous one, returning the final
    /// transformed training matrix.
    pub fn fit_transform(&mut self, x: &Dense) -> Result<Dense, PipelineError> {
        let mut cur = x.clone();
        for stage in &mut self.stages {
            stage.fit(&cur)?;
            cur = stage.transform(&cur)?;
        }
        Ok(cur)
    }

    /// Apply all fitted stages to new data.
    pub fn transform(&self, x: &Dense) -> Result<Dense, PipelineError> {
        let mut cur = x.clone();
        for stage in &self.stages {
            cur = stage.transform(&cur)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense {
        Dense::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 60.0]])
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let mut s = StandardScaler::new();
        s.fit(&sample()).unwrap();
        let z = s.transform(&sample()).unwrap();
        for m in ops::col_means(&z) {
            assert!(m.abs() < 1e-12);
        }
        for v in ops::col_vars(&z) {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_scaler_constant_column() {
        let x = Dense::from_rows(&[&[5.0], &[5.0]]);
        let mut s = StandardScaler::new();
        s.fit(&x).unwrap();
        let z = s.transform(&x).unwrap();
        assert_eq!(z.get(0, 0), 0.0);
        assert!(!z.get(1, 0).is_nan());
    }

    #[test]
    fn scaler_applies_training_stats_to_test_data() {
        let mut s = StandardScaler::new();
        s.fit(&sample()).unwrap();
        // Test row uses *training* mean/std — no leakage.
        let test = Dense::from_rows(&[&[2.0, 30.0]]);
        let z = s.transform(&test).unwrap();
        assert!((z.get(0, 0) - 0.0).abs() < 1e-12, "2.0 is the training mean of col 0");
    }

    #[test]
    fn min_max_unit_interval() {
        let mut s = MinMaxScaler::new();
        s.fit(&sample()).unwrap();
        let z = s.transform(&sample()).unwrap();
        assert_eq!(z.get(0, 0), 0.0);
        assert_eq!(z.get(2, 0), 1.0);
        assert_eq!(z.get(1, 1), 0.2);
    }

    #[test]
    fn imputer_strategies() {
        let x = Dense::from_rows(&[&[1.0, 4.0], &[f64::NAN, 6.0], &[3.0, f64::NAN], &[5.0, 10.0]]);
        let mut mean = Imputer::new(ImputeStrategy::Mean);
        mean.fit(&x).unwrap();
        let z = mean.transform(&x).unwrap();
        assert!((z.get(1, 0) - 3.0).abs() < 1e-12); // mean of 1,3,5
        assert!((z.get(2, 1) - 20.0 / 3.0).abs() < 1e-12);

        let mut median = Imputer::new(ImputeStrategy::Median);
        median.fit(&x).unwrap();
        let z = median.transform(&x).unwrap();
        assert!((z.get(1, 0) - 3.0).abs() < 1e-12);
        assert!((z.get(2, 1) - 6.0).abs() < 1e-12);

        let mut cst = Imputer::new(ImputeStrategy::Constant(-9.0));
        cst.fit(&x).unwrap();
        assert_eq!(cst.transform(&x).unwrap().get(1, 0), -9.0);
    }

    #[test]
    fn imputer_all_nan_column_defaults_to_zero() {
        let x = Dense::from_rows(&[&[f64::NAN], &[f64::NAN]]);
        let mut imp = Imputer::new(ImputeStrategy::Mean);
        imp.fit(&x).unwrap();
        assert_eq!(imp.transform(&x).unwrap().get(0, 0), 0.0);
    }

    #[test]
    fn binner_codes_and_clamping() {
        let x = Dense::from_rows(&[&[0.0], &[5.0], &[10.0]]);
        let mut b = Binner::new(2);
        b.fit(&x).unwrap();
        let z = b.transform(&x).unwrap();
        assert_eq!(z.col_vec(0), vec![0.0, 1.0, 1.0]);
        // Out-of-range test data clamps into the learned bins.
        let t = Dense::from_rows(&[&[-100.0], &[100.0]]);
        let z = b.transform(&t).unwrap();
        assert_eq!(z.col_vec(0), vec![0.0, 1.0]);
    }

    #[test]
    fn binner_validates_bins() {
        let mut b = Binner::new(1);
        assert!(matches!(b.fit(&sample()), Err(PipelineError::BadParam(_))));
    }

    #[test]
    fn not_fitted_errors() {
        assert!(matches!(
            StandardScaler::new().transform(&sample()),
            Err(PipelineError::NotFitted("StandardScaler"))
        ));
        assert!(matches!(
            MinMaxScaler::new().transform(&sample()),
            Err(PipelineError::NotFitted("MinMaxScaler"))
        ));
        assert!(matches!(
            Imputer::new(ImputeStrategy::Mean).transform(&sample()),
            Err(PipelineError::NotFitted("Imputer"))
        ));
    }

    #[test]
    fn shape_mismatch_after_fit() {
        let mut s = StandardScaler::new();
        s.fit(&sample()).unwrap();
        let wrong = Dense::zeros(2, 5);
        assert!(matches!(s.transform(&wrong), Err(PipelineError::Shape(_))));
    }

    #[test]
    fn pipeline_chains_stages() {
        let x = Dense::from_rows(&[&[1.0, f64::NAN], &[3.0, 20.0], &[5.0, 40.0]]);
        let mut pipe =
            Pipeline::new().add(Imputer::new(ImputeStrategy::Mean)).add(StandardScaler::new());
        let z = pipe.fit_transform(&x).unwrap();
        assert!(!z.data().iter().any(|v| v.is_nan()));
        for m in ops::col_means(&z) {
            assert!(m.abs() < 1e-12);
        }
        // transform on held-out data reuses all fitted stages.
        let t = Dense::from_rows(&[&[3.0, f64::NAN]]);
        let zt = pipe.transform(&t).unwrap();
        assert!(!zt.get(0, 1).is_nan());
        assert!((zt.get(0, 0) - 0.0).abs() < 1e-12, "3.0 is the training mean");
    }

    #[test]
    fn polynomial_features_layout() {
        let x = Dense::from_rows(&[&[2.0, 3.0, 5.0]]);
        let mut p = PolynomialFeatures::new();
        p.fit(&x).unwrap();
        let z = p.transform(&x).unwrap();
        // [x0, x1, x2, x0², x1², x2², x0x1, x0x2, x1x2]
        assert_eq!(z.row(0), &[2.0, 3.0, 5.0, 4.0, 9.0, 25.0, 6.0, 10.0, 15.0]);
        assert_eq!(PolynomialFeatures::output_cols(3), 9);
        assert_eq!(PolynomialFeatures::output_cols(1), 2);
        assert_eq!(PolynomialFeatures::output_cols(0), 0);
    }

    #[test]
    fn polynomial_features_enable_quadratic_fit() {
        // y = x² is not linear in x but is linear in the expanded features.
        let x = Dense::from_fn(30, 1, |r, _| r as f64 / 3.0 - 5.0);
        let y: Vec<f64> = (0..30)
            .map(|r| {
                let v = r as f64 / 3.0 - 5.0;
                v * v
            })
            .collect();
        let mut p = PolynomialFeatures::new();
        p.fit(&x).unwrap();
        let z = p.transform(&x).unwrap();
        let m = dm_ml::linreg::LinearRegression::fit(
            &z,
            &y,
            dm_ml::linreg::Solver::NormalEquations,
            0.0,
        )
        .unwrap();
        assert!(m.r2(&z, &y) > 0.999999);
        assert!((m.coefficients[1] - 1.0).abs() < 1e-6, "x² coefficient must be 1");
    }

    #[test]
    fn polynomial_features_validation() {
        let x = Dense::zeros(2, 3);
        assert!(matches!(
            PolynomialFeatures::new().transform(&x),
            Err(PipelineError::NotFitted("PolynomialFeatures"))
        ));
        let mut p = PolynomialFeatures::new();
        p.fit(&x).unwrap();
        assert!(matches!(p.transform(&Dense::zeros(2, 4)), Err(PipelineError::Shape(_))));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut pipe = Pipeline::new();
        assert!(pipe.is_empty());
        let z = pipe.fit_transform(&sample()).unwrap();
        assert_eq!(z, sample());
    }
}
