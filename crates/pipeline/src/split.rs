//! Seeded train/test splits and k-fold cross-validation indices.

use crate::PipelineError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Row indices of a train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Test row indices.
    pub test: Vec<usize>,
}

/// Shuffle `n` rows and hold out `test_fraction` of them.
///
/// # Errors
/// [`PipelineError::BadParam`] unless `0 < test_fraction < 1` and both sides
/// end up non-empty.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> Result<Split, PipelineError> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(PipelineError::BadParam(format!(
            "test_fraction {test_fraction} out of (0, 1)"
        )));
    }
    let n_test = ((n as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test >= n {
        return Err(PipelineError::BadParam(format!(
            "split of {n} rows at {test_fraction} leaves an empty side"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let test = idx.split_off(n - n_test);
    Ok(Split { train: idx, test })
}

/// K-fold cross-validation: returns `k` (train, validation) index pairs
/// covering all `n` rows, shuffled with the seed.
///
/// # Errors
/// [`PipelineError::BadParam`] unless `2 <= k <= n`.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Result<Vec<Split>, PipelineError> {
    if k < 2 || k > n {
        return Err(PipelineError::BadParam(format!("k={k} invalid for {n} rows")));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let val: Vec<usize> = idx[start..start + size].to_vec();
        let train: Vec<usize> = idx[..start].iter().chain(&idx[start + size..]).copied().collect();
        folds.push(Split { train, test: val });
        start += size;
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_rows() {
        let s = train_test_split(100, 0.25, 7).unwrap();
        assert_eq!(s.test.len(), 25);
        assert_eq!(s.train.len(), 75);
        let all: HashSet<usize> = s.train.iter().chain(&s.test).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.2, 1).unwrap(), train_test_split(50, 0.2, 1).unwrap());
        assert_ne!(train_test_split(50, 0.2, 1).unwrap(), train_test_split(50, 0.2, 2).unwrap());
    }

    #[test]
    fn split_validation() {
        assert!(train_test_split(10, 0.0, 1).is_err());
        assert!(train_test_split(10, 1.0, 1).is_err());
        assert!(train_test_split(10, -0.5, 1).is_err());
        assert!(train_test_split(2, 0.01, 1).is_err(), "empty test side");
        assert!(train_test_split(2, 0.99, 1).is_err(), "empty train side");
    }

    #[test]
    fn k_fold_covers_all_rows_once() {
        let folds = k_fold(23, 5, 9).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<usize> = Vec::new();
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 23);
            // Train and validation are disjoint.
            let tr: HashSet<usize> = f.train.iter().copied().collect();
            assert!(f.test.iter().all(|i| !tr.contains(i)));
            seen.extend(&f.test);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>(), "validation folds partition the data");
        // Uneven folds differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn k_fold_validation() {
        assert!(k_fold(10, 1, 0).is_err());
        assert!(k_fold(10, 11, 0).is_err());
        assert!(k_fold(10, 10, 0).is_ok(), "leave-one-out allowed");
    }
}
