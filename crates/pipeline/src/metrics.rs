//! Classification and regression metrics.

/// Confusion counts for binary classification (labels in {0, 1}).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted 1, actual 1.
    pub tp: usize,
    /// Predicted 1, actual 0.
    pub fp: usize,
    /// Predicted 0, actual 0.
    pub tn: usize,
    /// Predicted 0, actual 1.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against truth.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn from_preds(preds: &[f64], truth: &[f64]) -> Self {
        assert_eq!(preds.len(), truth.len(), "prediction/truth length mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in preds.iter().zip(truth) {
            match (p > 0.5, t > 0.5) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// `tp / (tp + fp)`; 0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; 0 when no positives exist.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Accuracy of hard predictions against truth.
pub fn accuracy(preds: &[f64], truth: &[f64]) -> f64 {
    Confusion::from_preds(preds, truth).accuracy()
}

/// Mean squared error.
///
/// # Panics
/// Panics if lengths differ.
pub fn mse(preds: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(preds.len(), truth.len(), "prediction/truth length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / preds.len() as f64
}

/// Mean absolute error.
///
/// # Panics
/// Panics if lengths differ.
pub fn mae(preds: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(preds.len(), truth.len(), "prediction/truth length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / preds.len() as f64
}

/// Coefficient of determination.
///
/// # Panics
/// Panics if lengths differ.
pub fn r2(preds: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(preds.len(), truth.len(), "prediction/truth length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = preds.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        if ss_res <= 1e-10 * truth.len() as f64 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// ROC AUC from scores and binary labels, via the rank-sum (Mann-Whitney)
/// formulation with midrank tie handling.
///
/// Returns 0.5 when one class is absent (no ranking information).
///
/// # Panics
/// Panics if lengths differ.
pub fn roc_auc(scores: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "score/truth length mismatch");
    let n_pos = truth.iter().filter(|&&t| t > 0.5).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort by score; assign midranks to ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("scores must not be NaN"));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &o in &order[i..=j] {
            ranks[o] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 =
        truth.iter().zip(&ranks).filter(|(&t, _)| t > 0.5).map(|(_, &r)| r).sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Mean log loss from probabilities and binary labels.
///
/// # Panics
/// Panics if lengths differ.
pub fn log_loss(probs: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(probs.len(), truth.len(), "probability/truth length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = probs
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum();
    total / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let preds = [1.0, 1.0, 0.0, 0.0, 1.0];
        let truth = [1.0, 0.0, 0.0, 1.0, 1.0];
        let c = Confusion::from_preds(&preds, &truth);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_degenerate_cases() {
        let all_neg = Confusion::from_preds(&[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(all_neg.precision(), 0.0);
        assert_eq!(all_neg.recall(), 0.0);
        assert_eq!(all_neg.f1(), 0.0);
        assert_eq!(all_neg.accuracy(), 1.0);
        assert_eq!(Confusion::default().accuracy(), 0.0);
    }

    #[test]
    fn regression_metrics() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 2.0, 5.0];
        assert!((mse(&p, &t) - 4.0 / 3.0).abs() < 1e-12);
        assert!((mae(&p, &t) - 2.0 / 3.0).abs() < 1e-12);
        assert!(r2(&t, &t) == 1.0);
        assert!(r2(&p, &t) < 1.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let truth = [0.0, 0.0, 1.0, 1.0];
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &truth) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &truth) - 0.0).abs() < 1e-12);
        // Constant scores: ties everywhere -> 0.5.
        assert!((roc_auc(&[0.5; 4], &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_partial_ordering() {
        let truth = [0.0, 1.0, 0.0, 1.0];
        let scores = [0.1, 0.4, 0.35, 0.8];
        // Pairs: (0.4>0.1 ✓), (0.4>0.35 ✓), (0.8>0.1 ✓), (0.8>0.35 ✓) => AUC 1.0
        assert!((roc_auc(&scores, &truth) - 1.0).abs() < 1e-12);
        let scores = [0.4, 0.1, 0.35, 0.8];
        // Positive 0.1 loses to both negatives; positive 0.8 beats both: AUC 0.5.
        assert!((roc_auc(&scores, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn log_loss_bounds() {
        let perfect = log_loss(&[0.0, 1.0], &[0.0, 1.0]);
        assert!(perfect < 1e-10);
        let chance = log_loss(&[0.5, 0.5], &[0.0, 1.0]);
        assert!((chance - std::f64::consts::LN_2).abs() < 1e-9);
        // Extreme wrong predictions are clamped, not infinite.
        let wrong = log_loss(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(wrong.is_finite());
        assert!(wrong > 20.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[1.0], &[1.0, 0.0]);
    }
}
