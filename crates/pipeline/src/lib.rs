//! # dm-pipeline
//!
//! Feature-engineering pipelines and evaluation utilities — the ML-lifecycle
//! pillar's data-preparation layer.
//!
//! * [`transform`] — fit/transform feature transformers over matrices:
//!   standardization, min-max scaling, mean/median/constant imputation,
//!   equal-width binning, and a composable [`transform::Pipeline`].
//! * [`encode`] — featurization from relational tables ([`dm_rel::Table`])
//!   to matrices: numeric passthrough, one-hot encoding of categoricals,
//!   and feature hashing for high-cardinality strings.
//! * [`split`] — seeded train/test splits and k-fold cross-validation indices.
//! * [`metrics`] — classification and regression metrics (accuracy, precision,
//!   recall, F1, confusion matrix, ROC AUC, MSE, MAE, R²).
//!
//! ```
//! use dm_matrix::Dense;
//! use dm_pipeline::transform::{Pipeline, StandardScaler, Transformer};
//!
//! let x = Dense::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0]]);
//! let mut pipe = Pipeline::new().add(StandardScaler::new());
//! let z = pipe.fit_transform(&x).unwrap();
//! // Every column now has mean 0.
//! for m in dm_matrix::ops::col_means(&z) {
//!     assert!(m.abs() < 1e-12);
//! }
//! ```

#![warn(missing_docs)]

pub mod encode;
pub mod metrics;
pub mod split;
pub mod transform;

/// Errors surfaced by pipeline components.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Transform called before fit.
    NotFitted(&'static str),
    /// Input shape incompatible with the fitted state.
    Shape(String),
    /// Invalid configuration.
    BadParam(String),
    /// Featurization failed (unknown column, bad type...).
    Encode(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NotFitted(t) => write!(f, "{t} used before fit"),
            PipelineError::Shape(m) => write!(f, "shape error: {m}"),
            PipelineError::BadParam(m) => write!(f, "bad parameter: {m}"),
            PipelineError::Encode(m) => write!(f, "encoding error: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PipelineError::NotFitted("StandardScaler").to_string().contains("before fit"));
        assert!(PipelineError::Shape("x".into()).to_string().contains("shape"));
    }
}
