//! Property-based tests for transformers, splits, and metrics.

use dm_matrix::{ops, Dense};
use dm_pipeline::metrics;
use dm_pipeline::split::{k_fold, train_test_split};
use dm_pipeline::transform::{
    Binner, ImputeStrategy, Imputer, MinMaxScaler, PolynomialFeatures, StandardScaler, Transformer,
};
use proptest::prelude::*;

fn matrix() -> impl Strategy<Value = Dense> {
    (2usize..30, 1usize..5).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0..100.0f64, r * c)
            .prop_map(move |data| Dense::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #[test]
    fn standard_scaler_output_stats(x in matrix()) {
        let mut s = StandardScaler::new();
        s.fit(&x).unwrap();
        let z = s.transform(&x).unwrap();
        for m in ops::col_means(&z) {
            prop_assert!(m.abs() < 1e-8);
        }
        for v in ops::col_vars(&z) {
            // Unit variance, or zero for constant columns.
            prop_assert!((v - 1.0).abs() < 1e-8 || v.abs() < 1e-8);
        }
    }

    #[test]
    fn minmax_scaler_bounds(x in matrix()) {
        let mut s = MinMaxScaler::new();
        s.fit(&x).unwrap();
        let z = s.transform(&x).unwrap();
        for &v in z.data() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn imputer_removes_all_nans(x in matrix(), nan_stride in 2usize..5) {
        let mut with_nans = x.clone();
        for r in (0..x.rows()).step_by(nan_stride) {
            with_nans.set(r, 0, f64::NAN);
        }
        for strat in [ImputeStrategy::Mean, ImputeStrategy::Median, ImputeStrategy::Constant(0.0)] {
            let mut imp = Imputer::new(strat);
            imp.fit(&with_nans).unwrap();
            let z = imp.transform(&with_nans).unwrap();
            prop_assert!(!z.data().iter().any(|v| v.is_nan()));
        }
    }

    #[test]
    fn imputer_leaves_non_nan_cells_untouched(x in matrix()) {
        let mut imp = Imputer::new(ImputeStrategy::Mean);
        imp.fit(&x).unwrap();
        let z = imp.transform(&x).unwrap();
        prop_assert!(z.approx_eq(&x, 0.0));
    }

    #[test]
    fn binner_codes_in_range(x in matrix(), bins in 2usize..8) {
        let mut b = Binner::new(bins);
        b.fit(&x).unwrap();
        let z = b.transform(&x).unwrap();
        for &v in z.data() {
            prop_assert!(v >= 0.0 && v <= (bins - 1) as f64);
            prop_assert_eq!(v, v.floor(), "bin codes are integers");
        }
    }

    #[test]
    fn polynomial_feature_count(x in matrix()) {
        let mut p = PolynomialFeatures::new();
        p.fit(&x).unwrap();
        let z = p.transform(&x).unwrap();
        prop_assert_eq!(z.cols(), PolynomialFeatures::output_cols(x.cols()));
        prop_assert_eq!(z.rows(), x.rows());
        // First d columns are the original features.
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                prop_assert_eq!(z.get(r, c), x.get(r, c));
            }
        }
    }

    #[test]
    fn split_partitions(n in 4usize..200, frac in 0.1..0.9f64, seed in 0u64..100) {
        if let Ok(s) = train_test_split(n, frac, seed) {
            prop_assert_eq!(s.train.len() + s.test.len(), n);
            let all: std::collections::HashSet<usize> =
                s.train.iter().chain(&s.test).copied().collect();
            prop_assert_eq!(all.len(), n, "no duplicates across sides");
        }
    }

    #[test]
    fn k_fold_partitions(n in 4usize..100, k in 2usize..6, seed in 0u64..50) {
        if k > n { return Ok(()); }
        let folds = k_fold(n, k, seed).unwrap();
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn auc_is_invariant_to_monotone_score_transforms(
        scores in proptest::collection::vec(0.01..0.99f64, 4..40),
        labels in proptest::collection::vec(0..2i32, 4..40),
    ) {
        let n = scores.len().min(labels.len());
        let s = &scores[..n];
        let y: Vec<f64> = labels[..n].iter().map(|&v| v as f64).collect();
        let a1 = metrics::roc_auc(s, &y);
        let transformed: Vec<f64> = s.iter().map(|&v| (v * 3.0).exp()).collect();
        let a2 = metrics::roc_auc(&transformed, &y);
        prop_assert!((a1 - a2).abs() < 1e-9, "AUC must be rank-based");
    }

    #[test]
    fn accuracy_complement(preds in proptest::collection::vec(0..2i32, 1..50)) {
        let p: Vec<f64> = preds.iter().map(|&v| v as f64).collect();
        let flipped: Vec<f64> = p.iter().map(|&v| 1.0 - v).collect();
        let truth = vec![1.0; p.len()];
        let a = metrics::accuracy(&p, &truth);
        let b = metrics::accuracy(&flipped, &truth);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mse_mae_relationship(
        pairs in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..40)
    ) {
        let (p, t): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let mse = metrics::mse(&p, &t);
        let mae = metrics::mae(&p, &t);
        // Jensen: mae^2 <= mse.
        prop_assert!(mae * mae <= mse + 1e-9);
        prop_assert!(mse >= 0.0 && mae >= 0.0);
    }
}
