//! A model registry with parameters, metrics, and lineage, persisted as
//! JSON lines.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// One registered model/experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Registry-assigned id (position in insertion order).
    pub id: u64,
    /// Model/experiment name.
    pub name: String,
    /// Hyperparameters.
    pub params: HashMap<String, f64>,
    /// Evaluation metrics (e.g. "accuracy", "r2").
    pub metrics: HashMap<String, f64>,
    /// Id of the record this one was derived from (warm start, refinement).
    pub parent: Option<u64>,
    /// Free-form tags (dataset version, feature set, git-ish revision...).
    pub tags: Vec<String>,
}

/// In-memory registry with JSON-lines persistence.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    records: Vec<ModelRecord>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a model, returning its id.
    pub fn register(
        &mut self,
        name: &str,
        params: HashMap<String, f64>,
        metrics: HashMap<String, f64>,
        parent: Option<u64>,
        tags: Vec<String>,
    ) -> u64 {
        let id = self.records.len() as u64;
        self.records.push(ModelRecord { id, name: name.to_owned(), params, metrics, parent, tags });
        id
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fetch by id.
    pub fn get(&self, id: u64) -> Option<&ModelRecord> {
        self.records.get(id as usize)
    }

    /// All records.
    pub fn records(&self) -> &[ModelRecord] {
        &self.records
    }

    /// The record with the highest value of `metric`, if any record has it.
    pub fn best_by(&self, metric: &str) -> Option<&ModelRecord> {
        self.records
            .iter()
            .filter(|r| r.metrics.contains_key(metric))
            .max_by(|a, b| {
                a.metrics[metric]
                    .partial_cmp(&b.metrics[metric])
                    .expect("metrics must not be NaN")
            })
    }

    /// Lineage chain from a record back to its root ancestor (inclusive,
    /// newest first).
    pub fn lineage(&self, id: u64) -> Vec<&ModelRecord> {
        let mut out = Vec::new();
        let mut cur = self.get(id);
        while let Some(r) = cur {
            out.push(r);
            cur = r.parent.and_then(|p| self.get(p));
            // Cycle guard: parents must strictly decrease.
            if let (Some(next), Some(last)) = (cur, out.last()) {
                if next.id >= last.id {
                    break;
                }
            }
        }
        out
    }

    /// Records carrying a tag.
    pub fn by_tag(&self, tag: &str) -> Vec<&ModelRecord> {
        self.records.iter().filter(|r| r.tags.iter().any(|t| t == tag)).collect()
    }

    /// Persist as JSON lines.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        for r in &self.records {
            let line = serde_json::to_string(r).expect("records serialize");
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// Load from JSON lines; malformed lines produce an error.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        let mut records = Vec::new();
        for (i, line) in BufReader::new(f).lines().enumerate() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let rec: ModelRecord = serde_json::from_str(&line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad record at line {}: {e}", i + 1),
                )
            })?;
            records.push(rec);
        }
        Ok(ModelRegistry { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(lr: f64) -> HashMap<String, f64> {
        let mut m = HashMap::new();
        m.insert("lr".into(), lr);
        m
    }

    fn metrics(acc: f64) -> HashMap<String, f64> {
        let mut m = HashMap::new();
        m.insert("accuracy".into(), acc);
        m
    }

    #[test]
    fn register_and_query() {
        let mut reg = ModelRegistry::new();
        let a = reg.register("logreg", params(0.1), metrics(0.8), None, vec!["v1".into()]);
        let b = reg.register("logreg", params(0.5), metrics(0.9), Some(a), vec!["v1".into()]);
        let c = reg.register("tree", HashMap::new(), metrics(0.85), None, vec!["v2".into()]);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.best_by("accuracy").unwrap().id, b);
        assert_eq!(reg.by_tag("v1").len(), 2);
        assert_eq!(reg.by_tag("v2")[0].id, c);
        assert!(reg.best_by("missing_metric").is_none());
    }

    #[test]
    fn lineage_walks_parents() {
        let mut reg = ModelRegistry::new();
        let a = reg.register("m", params(0.1), metrics(0.5), None, vec![]);
        let b = reg.register("m", params(0.2), metrics(0.6), Some(a), vec![]);
        let c = reg.register("m", params(0.3), metrics(0.7), Some(b), vec![]);
        let chain = reg.lineage(c);
        let ids: Vec<u64> = chain.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![c, b, a]);
        assert_eq!(reg.lineage(a).len(), 1);
    }

    #[test]
    fn save_load_round_trip() {
        let mut reg = ModelRegistry::new();
        reg.register("a", params(0.1), metrics(0.9), None, vec!["exp1".into()]);
        reg.register("b", params(0.2), metrics(0.7), Some(0), vec![]);
        let path = std::env::temp_dir().join("dmml_registry_test.jsonl");
        reg.save(&path).unwrap();
        let back = ModelRegistry::load(&path).unwrap();
        assert_eq!(back.records(), reg.records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed() {
        let path = std::env::temp_dir().join("dmml_registry_bad.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(ModelRegistry::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_registry() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.best_by("accuracy").is_none());
        assert!(reg.get(0).is_none());
    }
}
