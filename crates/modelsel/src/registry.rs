//! A model registry with parameters, metrics, and lineage, persisted as
//! JSON lines.
//!
//! Serialization is hand-rolled (the workspace builds offline, without
//! serde): records write as one JSON object per line with sorted map keys,
//! and load parses with a small recursive-descent reader that rejects
//! malformed lines. Floats round-trip exactly via Rust's shortest-repr
//! formatting.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Registry persistence failures.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A persisted line failed to parse as a record.
    Malformed {
        /// 1-based line number in the file.
        line: usize,
        /// Parser diagnostic.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry io error: {e}"),
            RegistryError::Malformed { line, message } => {
                write!(f, "bad record at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// One registered model/experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Registry-assigned id (position in insertion order).
    pub id: u64,
    /// Model/experiment name.
    pub name: String,
    /// Hyperparameters.
    pub params: HashMap<String, f64>,
    /// Evaluation metrics (e.g. "accuracy", "r2").
    pub metrics: HashMap<String, f64>,
    /// Id of the record this one was derived from (warm start, refinement).
    pub parent: Option<u64>,
    /// Free-form tags (dataset version, feature set, git-ish revision...).
    pub tags: Vec<String>,
}

/// In-memory registry with JSON-lines persistence.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    records: Vec<ModelRecord>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a model, returning its id.
    pub fn register(
        &mut self,
        name: &str,
        params: HashMap<String, f64>,
        metrics: HashMap<String, f64>,
        parent: Option<u64>,
        tags: Vec<String>,
    ) -> u64 {
        let id = self.records.len() as u64;
        self.records.push(ModelRecord { id, name: name.to_owned(), params, metrics, parent, tags });
        id
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fetch by id.
    pub fn get(&self, id: u64) -> Option<&ModelRecord> {
        self.records.get(id as usize)
    }

    /// All records.
    pub fn records(&self) -> &[ModelRecord] {
        &self.records
    }

    /// The record with the highest value of `metric`, if any record has it.
    pub fn best_by(&self, metric: &str) -> Option<&ModelRecord> {
        self.records.iter().filter(|r| r.metrics.contains_key(metric)).max_by(|a, b| {
            a.metrics[metric].partial_cmp(&b.metrics[metric]).expect("metrics must not be NaN")
        })
    }

    /// Lineage chain from a record back to its root ancestor (inclusive,
    /// newest first).
    pub fn lineage(&self, id: u64) -> Vec<&ModelRecord> {
        let mut out = Vec::new();
        let mut cur = self.get(id);
        while let Some(r) = cur {
            out.push(r);
            cur = r.parent.and_then(|p| self.get(p));
            // Cycle guard: parents must strictly decrease.
            if let (Some(next), Some(last)) = (cur, out.last()) {
                if next.id >= last.id {
                    break;
                }
            }
        }
        out
    }

    /// Records carrying a tag.
    pub fn by_tag(&self, tag: &str) -> Vec<&ModelRecord> {
        self.records.iter().filter(|r| r.tags.iter().any(|t| t == tag)).collect()
    }

    /// Persist as JSON lines.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RegistryError> {
        let mut f = std::fs::File::create(path)?;
        for r in &self.records {
            writeln!(f, "{}", json::record_to_line(r))?;
        }
        Ok(())
    }

    /// Load from JSON lines; malformed lines produce
    /// [`RegistryError::Malformed`] naming the offending line.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RegistryError> {
        let f = std::fs::File::open(path)?;
        let mut records = Vec::new();
        for (i, line) in BufReader::new(f).lines().enumerate() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let rec = json::record_from_line(&line)
                .map_err(|message| RegistryError::Malformed { line: i + 1, message })?;
            records.push(rec);
        }
        Ok(ModelRegistry { records })
    }
}

/// Minimal JSON encode/decode for [`ModelRecord`] lines.
mod json {
    use super::ModelRecord;
    use std::collections::HashMap;

    pub fn record_to_line(r: &ModelRecord) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"id\":");
        out.push_str(&r.id.to_string());
        out.push_str(",\"name\":");
        write_string(&mut out, &r.name);
        out.push_str(",\"params\":");
        write_map(&mut out, &r.params);
        out.push_str(",\"metrics\":");
        write_map(&mut out, &r.metrics);
        out.push_str(",\"parent\":");
        match r.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"tags\":[");
        for (i, t) in r.tags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, t);
        }
        out.push_str("]}");
        out
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_map(out: &mut String, m: &HashMap<String, f64>) {
        // Sorted keys: HashMap iteration order is nondeterministic, and
        // stable output makes saved files diffable.
        let mut keys: Vec<&String> = m.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(out, k);
            out.push(':');
            // `{:?}` prints the shortest representation that parses back to
            // the identical f64, so round-trips are exact.
            out.push_str(&format!("{:?}", m[*k]));
        }
        out.push('}');
    }

    /// Parsed JSON value. Numbers keep their raw text so integers round-trip
    /// without a float detour.
    enum Value {
        Null,
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    pub fn record_from_line(line: &str) -> Result<ModelRecord, String> {
        let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        let Value::Obj(fields) = v else {
            return Err("record must be a JSON object".into());
        };
        let field = |name: &str| -> Result<&Value, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name:?}"))
        };

        let id = as_u64(field("id")?).ok_or("field \"id\" must be an unsigned integer")?;
        let Value::Str(name) = field("name")? else {
            return Err("field \"name\" must be a string".into());
        };
        let params = as_map(field("params")?)?;
        let metrics = as_map(field("metrics")?)?;
        let parent = match field("parent")? {
            Value::Null => None,
            v => Some(as_u64(v).ok_or("field \"parent\" must be null or an unsigned integer")?),
        };
        let Value::Arr(tag_vals) = field("tags")? else {
            return Err("field \"tags\" must be an array".into());
        };
        let mut tags = Vec::with_capacity(tag_vals.len());
        for t in tag_vals {
            let Value::Str(s) = t else {
                return Err("tags must be strings".into());
            };
            tags.push(s.clone());
        }

        Ok(ModelRecord { id, name: name.clone(), params, metrics, parent, tags })
    }

    fn as_u64(v: &Value) -> Option<u64> {
        match v {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_map(v: &Value) -> Result<HashMap<String, f64>, String> {
        let Value::Obj(entries) = v else {
            return Err("expected a JSON object of numbers".into());
        };
        let mut out = HashMap::with_capacity(entries.len());
        for (k, v) in entries {
            let Value::Num(raw) = v else {
                return Err(format!("value for {k:?} must be a number"));
            };
            let n: f64 = raw.parse().map_err(|_| format!("bad number {raw:?}"))?;
            out.insert(k.clone(), n);
        }
        Ok(out)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                Some(&c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
                None => Err("unexpected end of input".into()),
            }
        }

        fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("expected string at byte {}", self.pos));
            }
            self.pos += 1;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                                // Surrogates never appear in our own output;
                                // map unpaired ones to the replacement char.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character (input is a &str, so
                        // boundaries are valid).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8")?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.bytes.get(self.pos),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            raw.parse::<f64>().map_err(|_| format!("bad number {raw:?}"))?;
            Ok(Value::Num(raw.to_owned()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(lr: f64) -> HashMap<String, f64> {
        let mut m = HashMap::new();
        m.insert("lr".into(), lr);
        m
    }

    fn metrics(acc: f64) -> HashMap<String, f64> {
        let mut m = HashMap::new();
        m.insert("accuracy".into(), acc);
        m
    }

    #[test]
    fn register_and_query() {
        let mut reg = ModelRegistry::new();
        let a = reg.register("logreg", params(0.1), metrics(0.8), None, vec!["v1".into()]);
        let b = reg.register("logreg", params(0.5), metrics(0.9), Some(a), vec!["v1".into()]);
        let c = reg.register("tree", HashMap::new(), metrics(0.85), None, vec!["v2".into()]);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.best_by("accuracy").unwrap().id, b);
        assert_eq!(reg.by_tag("v1").len(), 2);
        assert_eq!(reg.by_tag("v2")[0].id, c);
        assert!(reg.best_by("missing_metric").is_none());
    }

    #[test]
    fn lineage_walks_parents() {
        let mut reg = ModelRegistry::new();
        let a = reg.register("m", params(0.1), metrics(0.5), None, vec![]);
        let b = reg.register("m", params(0.2), metrics(0.6), Some(a), vec![]);
        let c = reg.register("m", params(0.3), metrics(0.7), Some(b), vec![]);
        let chain = reg.lineage(c);
        let ids: Vec<u64> = chain.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![c, b, a]);
        assert_eq!(reg.lineage(a).len(), 1);
    }

    #[test]
    fn save_load_round_trip() {
        let mut reg = ModelRegistry::new();
        reg.register("a", params(0.1), metrics(0.9), None, vec!["exp1".into()]);
        reg.register("b", params(0.2), metrics(0.7), Some(0), vec![]);
        let path = std::env::temp_dir().join("dmml_registry_test.jsonl");
        reg.save(&path).unwrap();
        let back = ModelRegistry::load(&path).unwrap();
        assert_eq!(back.records(), reg.records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_preserves_awkward_values() {
        let mut reg = ModelRegistry::new();
        let mut p = HashMap::new();
        p.insert("tiny".into(), 1e-308);
        p.insert("neg".into(), -0.1 - 0.2);
        p.insert("int-like".into(), 3.0);
        reg.register("quote\"back\\slash\nnewline", p, HashMap::new(), None, vec!["t\ta".into()]);
        let path = std::env::temp_dir().join("dmml_registry_awkward.jsonl");
        reg.save(&path).unwrap();
        let back = ModelRegistry::load(&path).unwrap();
        assert_eq!(back.records(), reg.records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed() {
        let path = std::env::temp_dir().join("dmml_registry_bad.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(ModelRegistry::load(&path).is_err());

        // Structurally valid JSON that is not a record must also fail.
        std::fs::write(&path, "{\"id\":1}\n").unwrap();
        assert!(ModelRegistry::load(&path).is_err());
        std::fs::write(&path, "[1,2,3]\n").unwrap();
        assert!(ModelRegistry::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_are_typed_and_name_the_line() {
        let path = std::env::temp_dir().join("dmml_registry_typed_err.jsonl");
        std::fs::write(&path, "{\"id\":0,\"name\":\"a\",\"params\":{},\"metrics\":{},\"parent\":null,\"tags\":[]}\nnot json\n").unwrap();
        let err = ModelRegistry::load(&path).unwrap_err();
        match &err {
            RegistryError::Malformed { line, .. } => assert_eq!(*line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(err.to_string().contains("line 2"), "{err}");
        // Works as a boxed error (Display + Error implemented).
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.source().is_none());

        let missing =
            ModelRegistry::load(std::env::temp_dir().join("dmml_no_such_file.jsonl")).unwrap_err();
        assert!(matches!(&missing, RegistryError::Io(_)));
        let boxed: Box<dyn std::error::Error> = Box::new(missing);
        assert!(boxed.source().is_some(), "Io wraps its cause");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_registry() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.best_by("accuracy").is_none());
        assert!(reg.get(0).is_none());
    }
}
