#![allow(clippy::needless_range_loop)] // index loops mirror the math in numeric kernels
//! Batched feature-subset exploration for linear models.
//!
//! Exploring R candidate feature subsets by refitting from scratch costs
//! `O(R · n · d²)`. The batched approach makes **one** pass over the data to
//! build the full Gram matrix `XᵀX` and correlation vector `Xᵀy`, then solves
//! each subset's normal equations on the *extracted sub-blocks* —
//! `O(n · d² + R · k³)` total. With `n` in the millions and subsets of a few
//! dozen features, the shared pass dominates and exploration becomes
//! near-free (experiment E8).

use dm_matrix::{ops, solve, Dense};
use dm_ml::MlError;

/// Shared sufficient statistics for least-squares over any feature subset.
#[derive(Debug, Clone)]
pub struct SharedGram {
    /// Full `(d+1) x (d+1)` Gram matrix of the intercept-augmented features.
    gram: Dense,
    /// Full `(d+1)` correlation vector `Xᵀy`.
    xty: Vec<f64>,
    /// Label variance statistics for R² computation.
    y_mean: f64,
    y_ss_tot: f64,
    /// Sum of squared labels (for residual computation via the identity
    /// `||y - Xw||² = yᵀy - 2 wᵀXᵀy + wᵀXᵀXw`).
    yty: f64,
    n: usize,
}

impl SharedGram {
    /// One pass over `(x, y)` building the shared statistics.
    ///
    /// # Errors
    /// [`MlError::Shape`] on row/label mismatch or empty data.
    pub fn build(x: &Dense, y: &[f64]) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        let xa = Dense::filled(x.rows(), 1, 1.0).hcat(x);
        let gram = ops::crossprod(&xa);
        let xty = ops::tmv(&xa, y);
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let y_ss_tot = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum();
        let yty = y.iter().map(|v| v * v).sum();
        Ok(SharedGram { gram, xty, y_mean, y_ss_tot, yty, n: x.rows() })
    }

    /// Number of (non-intercept) features.
    pub fn num_features(&self) -> usize {
        self.gram.rows() - 1
    }

    /// Solve the least-squares problem restricted to `subset` (indices into
    /// the original feature columns) with ridge strength `l2`, **without
    /// touching the data again**.
    ///
    /// Returns `(intercept, coefficients, training_r2)`.
    ///
    /// # Errors
    /// [`MlError::Degenerate`] when the sub-Gram is singular and `l2 == 0`;
    /// [`MlError::BadParam`] for out-of-range indices.
    pub fn solve_subset(&self, subset: &[usize], l2: f64) -> Result<SubsetFit, MlError> {
        let d = self.num_features();
        for &j in subset {
            if j >= d {
                return Err(MlError::BadParam(format!("feature index {j} out of range {d}")));
            }
        }
        // Augmented indices: intercept (0) plus shifted subset columns.
        let mut idx = Vec::with_capacity(subset.len() + 1);
        idx.push(0usize);
        idx.extend(subset.iter().map(|&j| j + 1));
        let k = idx.len();
        let mut g = Dense::zeros(k, k);
        for (a, &ia) in idx.iter().enumerate() {
            for (b, &ib) in idx.iter().enumerate() {
                g.set(a, b, self.gram.get(ia, ib));
            }
        }
        // Ridge on non-intercept entries.
        for a in 1..k {
            g.set(a, a, g.get(a, a) + l2 * self.n as f64);
        }
        let rhs: Vec<f64> = idx.iter().map(|&i| self.xty[i]).collect();
        let w = solve::solve_spd(&g, &rhs).map_err(|e| match e {
            dm_matrix::MatrixError::NotPositiveDefinite { pivot } => {
                MlError::Degenerate(format!("sub-Gram singular at pivot {pivot}"))
            }
            other => other.into(),
        })?;
        // Residual sum of squares from sufficient statistics only.
        let wt_xty: f64 = w.iter().zip(&rhs).map(|(a, b)| a * b).sum();
        let wt_g_w: f64 = {
            let gw = ops::gemv(&g, &w);
            // Remove the ridge contribution from the quadratic form so the
            // residual reflects the actual data fit.
            let mut q = ops::dot(&w, &gw);
            for a in 1..k {
                q -= l2 * self.n as f64 * w[a] * w[a];
            }
            q
        };
        let ss_res = (self.yty - 2.0 * wt_xty + wt_g_w).max(0.0);
        let r2 = if self.y_ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / self.y_ss_tot };
        Ok(SubsetFit { intercept: w[0], coefficients: w[1..].to_vec(), r2 })
    }

    /// Mean label (exposed for diagnostics).
    pub fn y_mean(&self) -> f64 {
        self.y_mean
    }
}

/// A least-squares fit over one feature subset.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetFit {
    /// Intercept term.
    pub intercept: f64,
    /// Coefficients in subset order.
    pub coefficients: Vec<f64>,
    /// Training R² computed from sufficient statistics.
    pub r2: f64,
}

/// Greedy forward selection over the shared Gram matrix: starting from the
/// empty model, repeatedly add the feature whose inclusion most improves
/// training R², stopping after `max_features` or when the best improvement
/// falls below `min_gain`. Every candidate evaluation is an O(k³) sub-solve —
/// no data pass after the initial one, which is what makes wide greedy search
/// affordable.
///
/// Returns the selected feature indices (in selection order) and the final fit.
pub fn forward_select(
    shared: &SharedGram,
    max_features: usize,
    min_gain: f64,
    l2: f64,
) -> Result<(Vec<usize>, SubsetFit), MlError> {
    let d = shared.num_features();
    let mut selected: Vec<usize> = Vec::new();
    let mut best_fit = shared.solve_subset(&[], l2)?;
    while selected.len() < max_features.min(d) {
        let mut best: Option<(usize, SubsetFit)> = None;
        for j in 0..d {
            if selected.contains(&j) {
                continue;
            }
            let mut cand = selected.clone();
            cand.push(j);
            let Ok(fit) = shared.solve_subset(&cand, l2) else {
                continue; // singular candidate (e.g. duplicate info) — skip
            };
            if best.as_ref().is_none_or(|(_, b)| fit.r2 > b.r2) {
                best = Some((j, fit));
            }
        }
        match best {
            Some((j, fit)) if fit.r2 - best_fit.r2 > min_gain => {
                selected.push(j);
                best_fit = fit;
            }
            _ => break,
        }
    }
    Ok((selected, best_fit))
}

/// Baseline: refit each subset from scratch (one data pass per subset).
pub fn naive_explore(
    x: &Dense,
    y: &[f64],
    subsets: &[Vec<usize>],
    l2: f64,
) -> Result<Vec<SubsetFit>, MlError> {
    use dm_ml::linreg::{LinearRegression, Solver};
    subsets
        .iter()
        .map(|s| {
            let xs = x.select_cols(s);
            let m = LinearRegression::fit(&xs, y, Solver::NormalEquations, l2)?;
            let r2 = m.r2(&xs, y);
            Ok(SubsetFit { intercept: m.intercept, coefficients: m.coefficients, r2 })
        })
        .collect()
}

/// Batched exploration: shared Gram pass, then per-subset solves.
pub fn batched_explore(
    x: &Dense,
    y: &[f64],
    subsets: &[Vec<usize>],
    l2: f64,
) -> Result<Vec<SubsetFit>, MlError> {
    let shared = SharedGram::build(x, y)?;
    subsets.iter().map(|s| shared.solve_subset(s, l2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (Dense, Vec<f64>) {
        // y depends on features 0 and 2 only.
        let x = Dense::from_fn(100, 4, |r, c| (((r + 1) * (c + 2) * 7) % 19) as f64);
        let y = (0..100).map(|r| 3.0 + 2.0 * x.get(r, 0) - 0.5 * x.get(r, 2)).collect();
        (x, y)
    }

    #[test]
    fn batched_matches_naive_exactly() {
        let (x, y) = data();
        let subsets = vec![vec![0], vec![0, 2], vec![1, 3], vec![0, 1, 2, 3], vec![2]];
        let naive = naive_explore(&x, &y, &subsets, 0.01).unwrap();
        let batched = batched_explore(&x, &y, &subsets, 0.01).unwrap();
        for (n, b) in naive.iter().zip(&batched) {
            assert!((n.intercept - b.intercept).abs() < 1e-6, "{n:?} vs {b:?}");
            for (cn, cb) in n.coefficients.iter().zip(&b.coefficients) {
                assert!((cn - cb).abs() < 1e-6);
            }
            assert!((n.r2 - b.r2).abs() < 1e-6);
        }
    }

    #[test]
    fn true_subset_wins() {
        let (x, y) = data();
        let subsets = vec![vec![1], vec![3], vec![1, 3], vec![0, 2]];
        let fits = batched_explore(&x, &y, &subsets, 0.0).unwrap();
        let best =
            fits.iter().enumerate().max_by(|a, b| a.1.r2.partial_cmp(&b.1.r2).unwrap()).unwrap().0;
        assert_eq!(best, 3, "subset {{0,2}} generates the labels");
        assert!(fits[3].r2 > 0.9999);
        assert!((fits[3].intercept - 3.0).abs() < 1e-6);
        assert!((fits[3].coefficients[0] - 2.0).abs() < 1e-6);
        assert!((fits[3].coefficients[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn r2_from_sufficient_stats_is_sane() {
        let (x, y) = data();
        let fits = batched_explore(&x, &y, &[vec![1]], 0.0).unwrap();
        assert!(fits[0].r2 < 1.0);
        assert!(fits[0].r2 > -1.0);
    }

    #[test]
    fn subset_index_validation() {
        let (x, y) = data();
        let shared = SharedGram::build(&x, &y).unwrap();
        assert!(matches!(shared.solve_subset(&[9], 0.0), Err(MlError::BadParam(_))));
        assert_eq!(shared.num_features(), 4);
    }

    #[test]
    fn empty_subset_fits_intercept_only() {
        let (x, y) = data();
        let shared = SharedGram::build(&x, &y).unwrap();
        let fit = shared.solve_subset(&[], 0.0).unwrap();
        assert!((fit.intercept - shared.y_mean()).abs() < 1e-9);
        assert!(fit.r2.abs() < 1e-9, "intercept-only explains no variance");
    }

    #[test]
    fn shape_validation() {
        let (x, y) = data();
        assert!(SharedGram::build(&x, &y[..10]).is_err());
        assert!(SharedGram::build(&Dense::zeros(0, 3), &[]).is_err());
    }

    #[test]
    fn forward_selection_finds_true_features() {
        let (x, y) = data();
        let shared = SharedGram::build(&x, &y).unwrap();
        let (selected, fit) = forward_select(&shared, 4, 1e-6, 0.0).unwrap();
        // Labels depend only on features 0 and 2: those must be chosen first,
        // and the gain filter stops before the noise features enter.
        let mut chosen = selected.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 2], "selected {selected:?}");
        assert!(fit.r2 > 0.9999);
    }

    #[test]
    fn forward_selection_respects_budget() {
        let (x, y) = data();
        let shared = SharedGram::build(&x, &y).unwrap();
        let (selected, _) = forward_select(&shared, 1, 0.0, 0.0).unwrap();
        assert_eq!(selected.len(), 1);
        // The first pick is the single most explanatory feature.
        assert!(selected[0] == 0 || selected[0] == 2);
    }

    #[test]
    fn forward_selection_empty_when_nothing_helps() {
        // Labels independent of all features.
        let x = Dense::from_fn(60, 3, |r, c| ((r * (c + 2)) % 7) as f64);
        let y = vec![5.0; 60];
        let shared = SharedGram::build(&x, &y).unwrap();
        let (selected, fit) = forward_select(&shared, 3, 1e-9, 0.0).unwrap();
        assert!(selected.is_empty(), "constant labels need no features: {selected:?}");
        assert!((fit.intercept - 5.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_feature_in_subset_is_degenerate() {
        let (x, y) = data();
        let shared = SharedGram::build(&x, &y).unwrap();
        assert!(matches!(shared.solve_subset(&[0, 0], 0.0), Err(MlError::Degenerate(_))));
        // Ridge rescues it.
        assert!(shared.solve_subset(&[0, 0], 0.1).is_ok());
    }
}
