//! Search tracing: wrap a trainer closure so every configuration evaluation
//! is timed, then render a search-trace report or feed the timings into the
//! workspace stats registry.

use crate::search::Params;
use dm_obs::{elapsed_ns, fmt_ns, Recorder};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed trainer invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Configuration evaluated.
    pub params: Params,
    /// Budget the trainer was given.
    pub budget: f64,
    /// Returned validation score.
    pub score: f64,
    /// Wall time of the fit/score call.
    pub wall_ns: u64,
}

/// Collects per-evaluation timings from a wrapped trainer. Interior-mutable
/// so the same trace can observe a `Fn` trainer passed by shared reference
/// into any of the [`crate::search`] strategies.
#[derive(Debug, Default)]
pub struct SearchTrace {
    entries: Mutex<Vec<TraceEntry>>,
}

impl SearchTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a trainer so every invocation is timed into this trace. The
    /// wrapper is itself a valid trainer for every search strategy:
    ///
    /// ```
    /// use dm_modelsel::search::{grid_search, ParamSpace};
    /// use dm_modelsel::trace::SearchTrace;
    ///
    /// let space = ParamSpace::new().grid("lr", &[0.01, 0.1]);
    /// let trace = SearchTrace::new();
    /// let result = grid_search(&space, trace.wrap(|p, _| -p.get("lr")));
    /// assert_eq!(trace.len(), result.evaluations.len());
    /// ```
    pub fn wrap<'a, F>(&'a self, trainer: F) -> impl Fn(&Params, f64) -> f64 + 'a
    where
        F: Fn(&Params, f64) -> f64 + 'a,
    {
        move |p: &Params, budget: f64| {
            let t0 = Instant::now();
            let score = trainer(p, budget);
            self.entries.lock().push(TraceEntry {
                params: p.clone(),
                budget,
                score,
                wall_ns: elapsed_ns(t0),
            });
            score
        }
    }

    /// Number of evaluations observed.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no evaluations were observed.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Snapshot of all entries, in execution order.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.lock().clone()
    }

    /// Total wall time across all observed evaluations.
    pub fn total_wall_ns(&self) -> u64 {
        self.entries.lock().iter().map(|e| e.wall_ns).sum()
    }

    /// Push the trace into a [`Recorder`]: one `modelsel.search.fit` duration
    /// event per evaluation plus a `modelsel.search.evals` counter.
    pub fn record(&self, rec: &dyn Recorder) {
        if !rec.is_enabled() {
            return;
        }
        let entries = self.entries.lock();
        rec.add("modelsel.search.evals", entries.len() as u64);
        for e in entries.iter() {
            rec.record_duration_ns("modelsel.search.fit", e.wall_ns);
        }
    }

    /// Render a search-trace report: evaluation count, total fit time, and
    /// the `top_k` configurations by score with their budgets and timings.
    pub fn report(&self, top_k: usize) -> String {
        let entries = self.entries.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "search trace: {} evaluations, total fit wall {}",
            entries.len(),
            fmt_ns(entries.iter().map(|e| e.wall_ns).sum()),
        );
        let mut ranked: Vec<&TraceEntry> = entries.iter().collect();
        ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        let _ = writeln!(out, "top {} by score:", top_k.min(ranked.len()));
        for e in ranked.iter().take(top_k) {
            let cfg = e
                .params
                .pairs()
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  score {:+.4}  budget {:.2}  fit {:>9}  {{{cfg}}}",
                e.score,
                e.budget,
                fmt_ns(e.wall_ns),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{grid_search, successive_halving, ParamSpace};

    fn space() -> ParamSpace {
        ParamSpace::new().grid("lr", &[0.01, 0.1, 1.0])
    }

    #[test]
    fn wrap_observes_every_evaluation() {
        let trace = SearchTrace::new();
        let r = grid_search(&space(), trace.wrap(|p, _| -(p.get("lr") - 0.1).abs()));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.len(), r.evaluations.len());
        let entries = trace.entries();
        // Scores and budgets mirror the search result, in execution order.
        for (t, e) in entries.iter().zip(&r.evaluations) {
            assert_eq!(t.score, e.score);
            assert_eq!(t.budget, e.budget);
        }
    }

    #[test]
    fn wrap_composes_with_budgeted_strategies() {
        let s = ParamSpace::new().uniform("x", 0.0, 1.0);
        let trace = SearchTrace::new();
        let r = successive_halving(&s, 9, 3, 1, trace.wrap(|p, _| p.get("x")));
        assert_eq!(trace.len(), r.evaluations.len());
        let budgets: Vec<f64> = trace.entries().iter().map(|e| e.budget).collect();
        assert!(budgets.iter().any(|&b| b < 1.0));
        assert!(budgets.contains(&1.0));
    }

    #[test]
    fn report_ranks_by_score() {
        let trace = SearchTrace::new();
        grid_search(&space(), trace.wrap(|p, _| -(p.get("lr") - 0.1).abs()));
        let txt = trace.report(2);
        assert!(txt.contains("3 evaluations"), "{txt}");
        assert!(txt.contains("top 2 by score:"), "{txt}");
        let first = txt.lines().nth(2).unwrap();
        assert!(first.contains("lr=0.1"), "best config first: {txt}");
    }

    #[test]
    fn record_pushes_durations() {
        use dm_obs::StatsRegistry;
        let trace = SearchTrace::new();
        grid_search(&space(), trace.wrap(|p, _| p.get("lr")));
        let reg = StatsRegistry::new();
        trace.record(&reg);
        let rep = reg.report();
        assert_eq!(rep.counter("modelsel.search.evals"), Some(3));
        assert_eq!(rep.duration("modelsel.search.fit").unwrap().count, 3);
        trace.record(&dm_obs::NoopRecorder);
    }
}
