//! # dm-modelsel
//!
//! Model-selection management — the tutorial's ML-lifecycle pillar: treating
//! the *set* of candidate models as the unit of optimization rather than a
//! single training run.
//!
//! * [`search`] — hyperparameter search strategies over a budget-aware
//!   trainer abstraction: grid, random, successive halving, and Hyperband.
//!   Early-stopping strategies exploit the fact that a cheap low-budget
//!   evaluation ranks configurations well enough to prune most of them.
//! * [`cv`] — k-fold cross-validation over generic fit/score closures.
//! * [`columbus`] — batched feature-subset exploration for linear models:
//!   one shared Gram-matrix pass over the data serves every subset, turning
//!   `O(R · n · d²)` exploration into `O(n · d² + R · k³)`.
//! * [`registry`] — a model registry recording every trained configuration
//!   with parameters, metrics, and lineage, persisted as JSON lines.
//! * [`trace`] — a search-trace layer that times every trainer invocation
//!   and renders per-configuration fit/score reports.
//!
//! ```
//! use dm_modelsel::search::{ParamSpace, grid_search};
//!
//! let space = ParamSpace::new()
//!     .grid("lr", &[0.01, 0.1, 1.0])
//!     .grid("l2", &[0.0, 0.5]);
//! // A fake trainer: score peaks at lr=0.1, l2=0.0.
//! let result = grid_search(&space, |p, _budget| {
//!     -(p.get("lr") - 0.1).abs() - p.get("l2")
//! });
//! assert_eq!(result.best_params.get("lr"), 0.1);
//! assert_eq!(result.evaluations.len(), 6);
//! ```

#![warn(missing_docs)]

pub mod columbus;
pub mod cv;
pub mod registry;
pub mod search;
pub mod trace;

pub use registry::{ModelRecord, ModelRegistry, RegistryError};
pub use search::{ParamSpace, Params, SearchResult};
pub use trace::{SearchTrace, TraceEntry};
