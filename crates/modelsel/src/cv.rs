//! K-fold cross-validation over generic fit/score closures.

use dm_matrix::Dense;
use dm_pipeline::split::k_fold;
use dm_pipeline::PipelineError;

/// Result of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold validation scores.
    pub fold_scores: Vec<f64>,
}

impl CvResult {
    /// Mean validation score.
    pub fn mean(&self) -> f64 {
        self.fold_scores.iter().sum::<f64>() / self.fold_scores.len().max(1) as f64
    }

    /// Population standard deviation of the fold scores.
    pub fn std(&self) -> f64 {
        let m = self.mean();
        let var = self.fold_scores.iter().map(|s| (s - m) * (s - m)).sum::<f64>()
            / self.fold_scores.len().max(1) as f64;
        var.sqrt()
    }
}

/// Run k-fold cross-validation.
///
/// `fit_score(x_train, y_train, x_val, y_val)` trains on the first pair and
/// returns a validation score on the second (higher is better).
///
/// # Errors
/// Propagates [`PipelineError::BadParam`] from fold construction.
pub fn cross_validate(
    x: &Dense,
    y: &[f64],
    k: usize,
    seed: u64,
    mut fit_score: impl FnMut(&Dense, &[f64], &Dense, &[f64]) -> f64,
) -> Result<CvResult, PipelineError> {
    if x.rows() != y.len() {
        return Err(PipelineError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
    }
    let folds = k_fold(x.rows(), k, seed)?;
    let mut fold_scores = Vec::with_capacity(k);
    for f in folds {
        let x_train = x.select_rows(&f.train);
        let y_train: Vec<f64> = f.train.iter().map(|&i| y[i]).collect();
        let x_val = x.select_rows(&f.test);
        let y_val: Vec<f64> = f.test.iter().map(|&i| y[i]).collect();
        fold_scores.push(fit_score(&x_train, &y_train, &x_val, &y_val));
    }
    Ok(CvResult { fold_scores })
}

/// [`cross_validate`] with folds trained concurrently on the `dm-par` scoped
/// pool: one task per fold, scores collected in fold order, so the result is
/// identical to the serial run (folds are independent by construction).
///
/// The fit/score closure must be `Fn + Sync` — it is shared read-only across
/// workers, unlike the serial API's `FnMut`.
///
/// # Errors
/// Propagates [`PipelineError::BadParam`] from fold construction.
pub fn cross_validate_par(
    x: &Dense,
    y: &[f64],
    k: usize,
    seed: u64,
    degree: usize,
    fit_score: impl Fn(&Dense, &[f64], &Dense, &[f64]) -> f64 + Sync,
) -> Result<CvResult, PipelineError> {
    if x.rows() != y.len() {
        return Err(PipelineError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
    }
    let folds = k_fold(x.rows(), k, seed)?;
    let fold_scores = dm_par::map_collect(folds.len(), degree, |i| {
        let f = &folds[i];
        let x_train = x.select_rows(&f.train);
        let y_train: Vec<f64> = f.train.iter().map(|&i| y[i]).collect();
        let x_val = x.select_rows(&f.test);
        let y_val: Vec<f64> = f.test.iter().map(|&i| y[i]).collect();
        fit_score(&x_train, &y_train, &x_val, &y_val)
    });
    Ok(CvResult { fold_scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_ml::linreg::{LinearRegression, Solver};

    fn data() -> (Dense, Vec<f64>) {
        let x = Dense::from_fn(60, 2, |r, c| ((r * (c + 3)) % 13) as f64);
        let y = (0..60).map(|r| 2.0 * x.get(r, 0) - x.get(r, 1) + 1.0).collect();
        (x, y)
    }

    #[test]
    fn cv_linear_regression_near_perfect() {
        let (x, y) = data();
        let r = cross_validate(&x, &y, 5, 42, |xt, yt, xv, yv| {
            let m = LinearRegression::fit(xt, yt, Solver::NormalEquations, 0.0).unwrap();
            m.r2(xv, yv)
        })
        .unwrap();
        assert_eq!(r.fold_scores.len(), 5);
        assert!(r.mean() > 0.999, "mean r2 {}", r.mean());
        assert!(r.std() < 0.01);
    }

    #[test]
    fn cv_is_deterministic_per_seed() {
        let (x, y) = data();
        let score = |xt: &Dense, yt: &[f64], xv: &Dense, yv: &[f64]| {
            let m = LinearRegression::fit(xt, yt, Solver::NormalEquations, 0.1).unwrap();
            -m.mse(xv, yv)
        };
        let a = cross_validate(&x, &y, 4, 9, score).unwrap();
        let b = cross_validate(&x, &y, 4, 9, score).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cv_folds_receive_disjoint_data() {
        let (x, y) = data();
        let mut val_rows_total = 0usize;
        cross_validate(&x, &y, 6, 1, |xt, _, xv, _| {
            assert_eq!(xt.rows() + xv.rows(), 60);
            val_rows_total += xv.rows();
            0.0
        })
        .unwrap();
        assert_eq!(val_rows_total, 60);
    }

    #[test]
    fn cv_par_matches_serial_at_every_degree() {
        let (x, y) = data();
        let score = |xt: &Dense, yt: &[f64], xv: &Dense, yv: &[f64]| {
            let m = LinearRegression::fit(xt, yt, Solver::NormalEquations, 0.1).unwrap();
            -m.mse(xv, yv)
        };
        let serial = cross_validate(&x, &y, 5, 42, score).unwrap();
        for degree in [1, 2, 3, 8] {
            let par = cross_validate_par(&x, &y, 5, 42, degree, score).unwrap();
            assert_eq!(par, serial, "degree {degree}");
        }
    }

    #[test]
    fn cv_par_validation_errors() {
        let (x, y) = data();
        assert!(cross_validate_par(&x, &y[..10], 5, 0, 2, |_, _, _, _| 0.0).is_err());
        assert!(cross_validate_par(&x, &y, 1, 0, 2, |_, _, _, _| 0.0).is_err());
    }

    #[test]
    fn cv_validation_errors() {
        let (x, y) = data();
        assert!(cross_validate(&x, &y[..10], 5, 0, |_, _, _, _| 0.0).is_err());
        assert!(cross_validate(&x, &y, 1, 0, |_, _, _, _| 0.0).is_err());
    }

    #[test]
    fn cv_result_stats() {
        let r = CvResult { fold_scores: vec![1.0, 2.0, 3.0] };
        assert!((r.mean() - 2.0).abs() < 1e-12);
        assert!((r.std() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
