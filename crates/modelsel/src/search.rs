//! Hyperparameter search strategies over a budget-aware trainer.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One hyperparameter configuration (name → value).
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    pairs: Vec<(String, f64)>,
}

impl Params {
    /// Empty configuration.
    pub fn new() -> Self {
        Params { pairs: Vec::new() }
    }

    /// Set a parameter (replacing an existing value of the same name).
    pub fn set(mut self, name: &str, value: f64) -> Self {
        if let Some(p) = self.pairs.iter_mut().find(|(n, _)| n == name) {
            p.1 = value;
        } else {
            self.pairs.push((name.to_owned(), value));
        }
        self
    }

    /// Read a parameter.
    ///
    /// # Panics
    /// Panics when the parameter is absent (search code always constructs
    /// complete configurations from the space).
    pub fn get(&self, name: &str) -> f64 {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing parameter {name}"))
            .1
    }

    /// Read a parameter if present.
    pub fn try_get(&self, name: &str) -> Option<f64> {
        self.pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// All pairs, in insertion order.
    pub fn pairs(&self) -> &[(String, f64)] {
        &self.pairs
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-parameter value sets (grid) or ranges (random sampling).
#[derive(Debug, Clone, Default)]
pub struct ParamSpace {
    grids: Vec<(String, Vec<f64>)>,
    ranges: Vec<(String, f64, f64, bool)>, // (name, lo, hi, log_scale)
}

impl ParamSpace {
    /// Empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a discrete grid dimension.
    pub fn grid(mut self, name: &str, values: &[f64]) -> Self {
        self.grids.push((name.to_owned(), values.to_vec()));
        self
    }

    /// Add a continuous uniform range for random sampling.
    pub fn uniform(mut self, name: &str, lo: f64, hi: f64) -> Self {
        self.ranges.push((name.to_owned(), lo, hi, false));
        self
    }

    /// Add a log-uniform range (e.g. learning rates).
    pub fn log_uniform(mut self, name: &str, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "log_uniform requires 0 < lo < hi");
        self.ranges.push((name.to_owned(), lo, hi, true));
        self
    }

    /// Enumerate the full cross product of the grid dimensions (ranges are
    /// excluded — grids only).
    pub fn enumerate_grid(&self) -> Vec<Params> {
        let mut out = vec![Params::new()];
        for (name, values) in &self.grids {
            let mut next = Vec::with_capacity(out.len() * values.len());
            for base in &out {
                for &v in values {
                    next.push(base.clone().set(name, v));
                }
            }
            out = next;
        }
        out
    }

    /// Sample one random configuration: grid dimensions pick a random listed
    /// value; range dimensions sample their distribution.
    pub fn sample(&self, rng: &mut StdRng) -> Params {
        let mut p = Params::new();
        for (name, values) in &self.grids {
            let v = values[rng.gen_range(0..values.len())];
            p = p.set(name, v);
        }
        for (name, lo, hi, log) in &self.ranges {
            let v = if *log {
                (rng.gen_range(lo.ln()..hi.ln())).exp()
            } else {
                rng.gen_range(*lo..*hi)
            };
            p = p.set(name, v);
        }
        p
    }
}

/// One completed evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Configuration evaluated.
    pub params: Params,
    /// Validation score (higher is better).
    pub score: f64,
    /// Budget the trainer was given (1.0 = full).
    pub budget: f64,
}

/// Search outcome: the winner plus the full evaluation history, so
/// time-to-accuracy curves (experiment E7) can be reconstructed.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best configuration found.
    pub best_params: Params,
    /// Score of the best configuration.
    pub best_score: f64,
    /// Every evaluation performed, in execution order.
    pub evaluations: Vec<Evaluation>,
    /// Total budget consumed (sum of per-evaluation budgets).
    pub total_budget: f64,
}

fn finish(evaluations: Vec<Evaluation>) -> SearchResult {
    let total_budget = evaluations.iter().map(|e| e.budget).sum();
    let best = evaluations
        .iter()
        .max_by(|a, b| a.score.partial_cmp(&b.score).expect("scores must not be NaN"))
        .expect("at least one evaluation");
    SearchResult {
        best_params: best.params.clone(),
        best_score: best.score,
        evaluations,
        total_budget,
    }
}

/// Exhaustive grid search at full budget.
///
/// `trainer(params, budget)` returns a validation score (higher is better);
/// `budget` ∈ (0, 1] is the fraction of full training effort.
pub fn grid_search(space: &ParamSpace, trainer: impl Fn(&Params, f64) -> f64) -> SearchResult {
    let evals: Vec<Evaluation> = space
        .enumerate_grid()
        .into_iter()
        .map(|p| {
            let score = trainer(&p, 1.0);
            Evaluation { params: p, score, budget: 1.0 }
        })
        .collect();
    assert!(!evals.is_empty(), "grid search over an empty space");
    finish(evals)
}

/// [`grid_search`] with configurations trained concurrently on the `dm-par`
/// scoped pool: one task per configuration, results collected in enumeration
/// order so the evaluation history — and the shared tie-breaking over it —
/// match the serial search exactly.
///
/// The trainer must be `Sync` (shared read-only across workers); wrap shared
/// mutable state (e.g. a [`SearchTrace`](crate::trace::SearchTrace)) in its
/// own lock, as `SearchTrace::wrap` already does.
pub fn grid_search_par(
    space: &ParamSpace,
    degree: usize,
    trainer: impl Fn(&Params, f64) -> f64 + Sync,
) -> SearchResult {
    let configs = space.enumerate_grid();
    assert!(!configs.is_empty(), "grid search over an empty space");
    let evals = dm_par::map_collect(configs.len(), degree, |i| {
        let p = configs[i].clone();
        let score = trainer(&p, 1.0);
        Evaluation { params: p, score, budget: 1.0 }
    });
    finish(evals)
}

/// Random search: `n` full-budget samples.
pub fn random_search(
    space: &ParamSpace,
    n: usize,
    seed: u64,
    trainer: impl Fn(&Params, f64) -> f64,
) -> SearchResult {
    assert!(n > 0, "random search needs at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let evals: Vec<Evaluation> = (0..n)
        .map(|_| {
            let p = space.sample(&mut rng);
            let score = trainer(&p, 1.0);
            Evaluation { params: p, score, budget: 1.0 }
        })
        .collect();
    finish(evals)
}

/// Successive halving: start `n` configurations at a small budget, keep the
/// top `1/eta` fraction each rung, multiplying the budget by `eta`, until one
/// configuration reaches full budget.
pub fn successive_halving(
    space: &ParamSpace,
    n: usize,
    eta: usize,
    seed: u64,
    trainer: impl Fn(&Params, f64) -> f64,
) -> SearchResult {
    assert!(n > 0 && eta >= 2, "need n > 0 and eta >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut survivors: Vec<Params> = (0..n).map(|_| space.sample(&mut rng)).collect();
    // Number of rungs so the last rung runs at budget 1.0.
    let rungs = (n as f64).log(eta as f64).ceil().max(1.0) as u32;
    let mut evals = Vec::new();
    for r in 0..=rungs {
        let budget = (eta as f64).powi(r as i32 - rungs as i32).min(1.0);
        let mut scored: Vec<Evaluation> = survivors
            .iter()
            .map(|p| Evaluation { params: p.clone(), score: trainer(p, budget), budget })
            .collect();
        scored.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores must not be NaN"));
        let keep = (scored.len() / eta).max(1);
        survivors = scored.iter().take(keep).map(|e| e.params.clone()).collect();
        evals.extend(scored);
        if survivors.len() == 1 && budget >= 1.0 {
            break;
        }
    }
    finish(evals)
}

/// Hyperband: run successive halving at several aggressiveness levels
/// ("brackets"), hedging against bad low-budget rankings.
pub fn hyperband(
    space: &ParamSpace,
    max_configs: usize,
    eta: usize,
    seed: u64,
    trainer: impl Fn(&Params, f64) -> f64,
) -> SearchResult {
    assert!(max_configs > 0 && eta >= 2, "need max_configs > 0 and eta >= 2");
    let s_max = (max_configs as f64).log(eta as f64).floor() as i32;
    let mut all = Vec::new();
    for s in (0..=s_max).rev() {
        let n = ((max_configs as f64) * (eta as f64).powi(s) / (eta as f64).powi(s_max).max(1.0))
            .ceil()
            .max(1.0) as usize;
        let result = successive_halving(space, n, eta, seed.wrapping_add(s as u64), &trainer);
        all.extend(result.evaluations);
    }
    finish(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new().grid("lr", &[0.001, 0.01, 0.1, 1.0]).grid("l2", &[0.0, 0.1, 1.0])
    }

    /// Deterministic synthetic objective with optimum at lr=0.1, l2=0.1;
    /// low-budget evaluations see a noisy but correlated score.
    fn objective(p: &Params, budget: f64) -> f64 {
        let base = -(p.get("lr").log10() - (0.1f64).log10()).abs() - (p.get("l2") - 0.1).abs();
        // Budget shrinks score toward a pessimistic value, preserving order.
        base * (0.5 + 0.5 * budget)
    }

    #[test]
    fn grid_covers_cross_product() {
        let r = grid_search(&space(), objective);
        assert_eq!(r.evaluations.len(), 12);
        assert_eq!(r.best_params.get("lr"), 0.1);
        assert_eq!(r.best_params.get("l2"), 0.1);
        assert!((r.total_budget - 12.0).abs() < 1e-12);
    }

    #[test]
    fn grid_search_par_matches_serial_at_every_degree() {
        let serial = grid_search(&space(), objective);
        for degree in [1, 2, 3, 8] {
            let par = grid_search_par(&space(), degree, objective);
            assert_eq!(par.best_params, serial.best_params, "degree {degree}");
            assert_eq!(par.best_score, serial.best_score, "degree {degree}");
            assert_eq!(par.evaluations, serial.evaluations, "degree {degree}");
        }
    }

    #[test]
    fn grid_search_par_composes_with_trace() {
        let trace = crate::trace::SearchTrace::new();
        let r = grid_search_par(&space(), 4, trace.wrap(objective));
        assert_eq!(trace.len(), r.evaluations.len());
    }

    #[test]
    #[should_panic(expected = "grid search over an empty space")]
    fn grid_search_par_empty_space_panics() {
        // An empty ParamSpace enumerates one empty Params; a grid dimension
        // with no values enumerates zero.
        grid_search_par(&ParamSpace::new().grid("x", &[]), 2, |_, _| 0.0);
    }

    #[test]
    fn random_search_finds_good_region() {
        let s = ParamSpace::new().log_uniform("lr", 1e-4, 10.0).uniform("l2", 0.0, 1.0);
        let r = random_search(&s, 200, 7, objective);
        assert_eq!(r.evaluations.len(), 200);
        // With 200 log-uniform samples, something lands near lr=0.1.
        assert!(r.best_params.get("lr") > 0.01 && r.best_params.get("lr") < 1.0);
        assert!(r.best_score > -0.5, "score {}", r.best_score);
    }

    #[test]
    fn random_search_deterministic_per_seed() {
        let s = ParamSpace::new().uniform("x", 0.0, 1.0);
        let a = random_search(&s, 10, 3, |p, _| p.get("x"));
        let b = random_search(&s, 10, 3, |p, _| p.get("x"));
        assert_eq!(a.best_params, b.best_params);
    }

    #[test]
    fn successive_halving_spends_less_than_full_grid() {
        let s = ParamSpace::new().log_uniform("lr", 1e-4, 10.0).uniform("l2", 0.0, 1.0);
        let sh = successive_halving(&s, 27, 3, 5, objective);
        // 27 configs would cost 27.0 at full budget; SH must be much cheaper.
        assert!(sh.total_budget < 27.0 * 0.5, "budget {}", sh.total_budget);
        // And still find a decent configuration.
        assert!(sh.best_score > -1.0, "score {}", sh.best_score);
    }

    #[test]
    fn successive_halving_shrinks_survivors() {
        let s = ParamSpace::new().uniform("x", 0.0, 1.0);
        let r = successive_halving(&s, 9, 3, 1, |p, _| p.get("x"));
        // Rung sizes 9, 3, 1 -> 13 evaluations.
        assert_eq!(r.evaluations.len(), 13);
        // Budgets increase across rungs.
        let budgets: Vec<f64> = r.evaluations.iter().map(|e| e.budget).collect();
        assert!(budgets[0] < *budgets.last().unwrap());
        assert_eq!(*budgets.last().unwrap(), 1.0);
    }

    #[test]
    fn hyperband_runs_multiple_brackets() {
        let s = ParamSpace::new().log_uniform("lr", 1e-4, 10.0).uniform("l2", 0.0, 1.0);
        let hb = hyperband(&s, 9, 3, 11, objective);
        assert!(!hb.evaluations.is_empty());
        // Contains both low-budget and full-budget evaluations.
        let min_b = hb.evaluations.iter().map(|e| e.budget).fold(f64::INFINITY, f64::min);
        let max_b = hb.evaluations.iter().map(|e| e.budget).fold(0.0, f64::max);
        assert!(min_b < 1.0);
        assert_eq!(max_b, 1.0);
    }

    #[test]
    fn params_api() {
        let p = Params::new().set("a", 1.0).set("b", 2.0).set("a", 3.0);
        assert_eq!(p.get("a"), 3.0);
        assert_eq!(p.try_get("c"), None);
        assert_eq!(p.pairs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn params_get_missing_panics() {
        Params::new().get("ghost");
    }

    #[test]
    fn sample_respects_ranges() {
        let s = ParamSpace::new()
            .grid("g", &[5.0, 6.0])
            .uniform("u", -1.0, 1.0)
            .log_uniform("l", 0.001, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let p = s.sample(&mut rng);
            assert!(p.get("g") == 5.0 || p.get("g") == 6.0);
            assert!((-1.0..1.0).contains(&p.get("u")));
            assert!((0.001..=1.0).contains(&p.get("l")));
        }
    }
}
