//! Property-based tests for search strategies and batched exploration.

use dm_matrix::{ops, Dense};
use dm_modelsel::columbus::{batched_explore, naive_explore, SharedGram};
use dm_modelsel::search::{grid_search, random_search, successive_halving, ParamSpace, Params};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_search_finds_global_max_of_grid(values in proptest::collection::vec(-100.0..100.0f64, 1..12)) {
        let space = ParamSpace::new().grid("x", &values);
        let r = grid_search(&space, |p: &Params, _| p.get("x"));
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(r.best_score, max);
        prop_assert_eq!(r.evaluations.len(), values.len());
    }

    #[test]
    fn random_search_best_is_max_of_evaluations(n in 1usize..30, seed in 0u64..100) {
        let space = ParamSpace::new().uniform("x", -1.0, 1.0);
        let r = random_search(&space, n, seed, |p: &Params, _| p.get("x") * p.get("x"));
        let max = r.evaluations.iter().map(|e| e.score).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(r.best_score, max);
        prop_assert_eq!(r.evaluations.len(), n);
    }

    #[test]
    fn successive_halving_budget_below_full(n in 4usize..40, eta in 2usize..5, seed in 0u64..50) {
        let space = ParamSpace::new().uniform("x", 0.0, 1.0);
        let r = successive_halving(&space, n, eta, seed, |p: &Params, _| p.get("x"));
        // Full-budget evaluation of n configs would cost n; SH must be cheaper
        // for n > eta (rung budgets are geometric).
        if n > eta {
            prop_assert!(r.total_budget < n as f64, "budget {} for n {}", r.total_budget, n);
        }
        // The final survivor was evaluated at full budget.
        prop_assert!(r.evaluations.iter().any(|e| e.budget >= 1.0));
    }

    #[test]
    fn successive_halving_monotone_objective_keeps_best(seed in 0u64..100) {
        // With a budget-independent objective, the true best of the initial
        // draw must survive to the final rung.
        let space = ParamSpace::new().uniform("x", 0.0, 1.0);
        let r = successive_halving(&space, 9, 3, seed, |p: &Params, _| p.get("x"));
        let first_rung_max = r
            .evaluations
            .iter()
            .take(9)
            .map(|e| e.score)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((r.best_score - first_rung_max).abs() < 1e-12);
    }

    #[test]
    fn batched_equals_naive_on_random_problems(seed in 0u64..60) {
        let d = dm_data::labeled::regression(120, 6, 0.1, seed);
        let subsets: Vec<Vec<usize>> =
            (0..6).map(|i| vec![i % 6, (i + 2) % 6].into_iter().collect::<std::collections::BTreeSet<_>>().into_iter().collect()).collect();
        let a = naive_explore(&d.x, &d.y, &subsets, 0.05).unwrap();
        let b = batched_explore(&d.x, &d.y, &subsets, 0.05).unwrap();
        for (na, ba) in a.iter().zip(&b) {
            prop_assert!((na.r2 - ba.r2).abs() < 1e-6);
            prop_assert!((na.intercept - ba.intercept).abs() < 1e-5);
        }
    }

    #[test]
    fn shared_gram_subset_fit_never_beats_full_set(seed in 0u64..60) {
        // Training R² is monotone in the feature set (nested models).
        let d = dm_data::labeled::regression(100, 5, 0.2, seed);
        let shared = SharedGram::build(&d.x, &d.y).unwrap();
        let sub = shared.solve_subset(&[0, 1], 0.0);
        let full = shared.solve_subset(&[0, 1, 2, 3, 4], 0.0);
        if let (Ok(sub), Ok(full)) = (sub, full) {
            prop_assert!(full.r2 >= sub.r2 - 1e-9, "full {} < sub {}", full.r2, sub.r2);
        }
    }

    #[test]
    fn subset_fit_matches_projection_residual(seed in 0u64..40) {
        // Cross-check the sufficient-statistics R² against an explicit
        // residual computed from the data.
        let d = dm_data::labeled::regression(80, 4, 0.1, seed);
        let shared = SharedGram::build(&d.x, &d.y).unwrap();
        if let Ok(fit) = shared.solve_subset(&[1, 3], 0.0) {
            let xs = d.x.select_cols(&[1, 3]);
            let preds: Vec<f64> = (0..80)
                .map(|r| fit.intercept + ops::dot(xs.row(r), &fit.coefficients))
                .collect();
            let mean = d.y.iter().sum::<f64>() / 80.0;
            let ss_res: f64 = preds.iter().zip(&d.y).map(|(p, t)| (p - t) * (p - t)).sum();
            let ss_tot: f64 = d.y.iter().map(|t| (t - mean) * (t - mean)).sum();
            let explicit_r2 = 1.0 - ss_res / ss_tot;
            prop_assert!((fit.r2 - explicit_r2).abs() < 1e-6, "{} vs {explicit_r2}", fit.r2);
        }
    }

    #[test]
    fn param_space_enumeration_size(g1 in 1usize..5, g2 in 1usize..5) {
        let v1: Vec<f64> = (0..g1).map(|i| i as f64).collect();
        let v2: Vec<f64> = (0..g2).map(|i| i as f64).collect();
        let space = ParamSpace::new().grid("a", &v1).grid("b", &v2);
        prop_assert_eq!(space.enumerate_grid().len(), g1 * g2);
    }
}

/// Dense import used by the projection-residual property.
#[allow(unused)]
fn _assert_types(_: &Dense) {}
