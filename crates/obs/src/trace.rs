//! Structured tracing: RAII spans with trace/span/parent ids, collected into
//! mutex-sharded global buffers and exportable as Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`).
//!
//! The span model mirrors the introspection machinery of the surveyed
//! systems' fine-grained lineage tracing: every interesting unit of work —
//! one HOP-node evaluation, one `dm-par` worker task, one compression
//! planning phase — opens a [`Span`] on entry and records a *complete* event
//! (start + duration) when the span drops. Within one thread spans nest via
//! an implicit thread-local stack; across threads the parent is propagated
//! *explicitly*: the spawning side captures [`current`] (a [`SpanHandle`],
//! `Copy` and `Send`) and the worker opens its span with
//! [`Span::child_of`], so worker tasks nest under the executor node that
//! spawned them even though they run on other threads.
//!
//! Tracing is globally gated by an atomic flag ([`set_enabled`]); when
//! disabled, every entry point is a single relaxed atomic load and no
//! allocation or clock read happens. Buffers are process-global so that
//! leaf crates (`dm-par`, `dm-buffer`) need no handle threading; call
//! [`clear`] (or [`StatsRegistry::reset`](crate::StatsRegistry::reset),
//! which forwards to it) between profiled runs so samples do not bleed from
//! one run into the next.
//!
//! ```
//! use dm_obs::trace;
//!
//! trace::set_enabled(true);
//! trace::clear();
//! {
//!     let mut root = trace::Span::enter("eval", "exec");
//!     root.arg("op", "matmul");
//!     let parent = trace::current(); // explicit handle for cross-thread work
//!     std::thread::scope(|s| {
//!         s.spawn(move || {
//!             let _task = trace::Span::child_of(parent, "par.task", "par");
//!         });
//!     });
//!     trace::instant("pool.spill", &[("bytes", "4096".into())]);
//! }
//! let events = trace::take_events();
//! assert_eq!(events.len(), 3);
//! let json = trace::chrome_trace(&events);
//! assert!(json.contains("\"traceEvents\""));
//! trace::set_enabled(false);
//! ```

use crate::json::escape_json;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable naming the file the Chrome trace should be written
/// to. When set, [`env_trace_path`] returns the path, executors enable span
/// emission automatically, and [`write_env_trace`] performs the export.
pub const TRACE_ENV: &str = "DMML_TRACE";

/// Number of mutex shards the global event buffer is split across. Threads
/// hash to a shard by thread id, so concurrent workers rarely contend.
const SHARDS: usize = 8;

/// Worker slots tracked by the per-worker busy-time counters.
const MAX_WORKERS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
// Global open/close sequence: assigned when a span opens and again when it
// closes, so sorting events by sequence reproduces the true nesting order
// even when nanosecond timestamps tie.
static SEQ: AtomicU64 = AtomicU64::new(1);

static BUFFERS: [Mutex<Vec<TraceEvent>>; SHARDS] = [const { Mutex::new(Vec::new()) }; SHARDS];

static WORKER_BUSY_NS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];

thread_local! {
    static STACK: RefCell<Vec<SpanHandle>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The clock origin shared by every event in the process, so timestamps from
/// different threads land on one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

/// Turn span collection on or off process-wide. Disabled tracing costs one
/// relaxed atomic load per instrumentation point.
pub fn set_enabled(on: bool) {
    // Pin the epoch before the first event so timestamps are small offsets.
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently collected.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The path named by the `DMML_TRACE` environment variable, if set and
/// non-empty.
pub fn env_trace_path() -> Option<String> {
    match std::env::var(TRACE_ENV) {
        Ok(p) if !p.trim().is_empty() => Some(p),
        _ => None,
    }
}

/// An identifier triple locating a span: the trace it belongs to, its own
/// id, and its parent's id (0 for roots). `Copy` and `Send` so it can be
/// captured by worker closures — this is the explicit parent propagation
/// that makes cross-thread tasks nest under the span that spawned them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle {
    /// Trace (one per root span) this span belongs to.
    pub trace: u64,
    /// This span's unique id.
    pub span: u64,
}

/// The span currently open on this thread, if any. Capture this before
/// spawning workers and pass it to [`Span::child_of`] inside them.
pub fn current() -> Option<SpanHandle> {
    if !is_enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied())
}

/// What kind of event a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: begin/end pair in the Chrome export.
    Span {
        /// Nanoseconds from the process trace epoch to span open.
        start_ns: u64,
        /// Span duration in nanoseconds.
        dur_ns: u64,
        /// Global sequence number at open.
        seq_open: u64,
        /// Global sequence number at close.
        seq_close: u64,
    },
    /// A point-in-time instant event (`ph: "i"`).
    Instant {
        /// Nanoseconds from the process trace epoch.
        ts_ns: u64,
        /// Global sequence number.
        seq: u64,
    },
}

/// One collected event, as drained by [`take_events`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Small dense per-thread id (assigned in thread-creation order).
    pub tid: u64,
    /// Event name (op label, task label, event site).
    pub name: String,
    /// Category shown by trace viewers (`exec`, `par`, `buffer`, `compress`).
    pub cat: &'static str,
    /// Trace id of the owning trace (0 for instants outside any span).
    pub trace: u64,
    /// Span id (0 for instants).
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Span or instant payload.
    pub kind: EventKind,
    /// Key/value arguments (op name, dims, flops, worker id, bytes, ...).
    pub args: Vec<(&'static str, String)>,
}

impl TraceEvent {
    /// Duration of a span event, 0 for instants. Never negative by
    /// construction (computed from a monotonic clock).
    pub fn dur_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { dur_ns, .. } => dur_ns,
            EventKind::Instant { .. } => 0,
        }
    }

    /// Value of an argument by key, if attached.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }
}

fn push_event(ev: TraceEvent) {
    let shard = (ev.tid as usize) % SHARDS;
    BUFFERS[shard].lock().expect("trace buffer poisoned").push(ev);
}

/// Record a point-in-time instant event, attached to the current span when
/// one is open. No-op when tracing is disabled.
pub fn instant(name: &str, args: &[(&'static str, String)]) {
    if !is_enabled() {
        return;
    }
    let (trace, parent) = STACK.with(|s| s.borrow().last().map_or((0, 0), |h| (h.trace, h.span)));
    push_event(TraceEvent {
        tid: tid(),
        name: name.to_owned(),
        cat: "instant",
        trace,
        span: 0,
        parent,
        kind: EventKind::Instant { ts_ns: now_ns(), seq: SEQ.fetch_add(1, Ordering::Relaxed) },
        args: args.to_vec(),
    });
}

/// An open span. Records a complete event (with duration) when dropped.
/// Inert (no allocation, no clock read, nothing recorded) when tracing was
/// disabled at open time.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    handle: SpanHandle,
    parent: u64,
    name: String,
    cat: &'static str,
    start_ns: u64,
    seq_open: u64,
    args: Vec<(&'static str, String)>,
}

impl Span {
    fn open(parent: Option<SpanHandle>, name: &str, cat: &'static str) -> Span {
        if !is_enabled() {
            return Span { live: None };
        }
        let (trace, parent_id) = match parent {
            Some(p) => (p.trace, p.span),
            None => (NEXT_TRACE.fetch_add(1, Ordering::Relaxed), 0),
        };
        let handle = SpanHandle { trace, span: NEXT_SPAN.fetch_add(1, Ordering::Relaxed) };
        STACK.with(|s| s.borrow_mut().push(handle));
        Span {
            live: Some(LiveSpan {
                handle,
                parent: parent_id,
                name: name.to_owned(),
                cat,
                start_ns: now_ns(),
                seq_open: SEQ.fetch_add(1, Ordering::Relaxed),
                args: Vec::new(),
            }),
        }
    }

    /// Open a span as a child of the span currently on this thread's stack
    /// (a fresh root trace when the stack is empty).
    pub fn enter(name: &str, cat: &'static str) -> Span {
        if !is_enabled() {
            return Span { live: None };
        }
        let parent = STACK.with(|s| s.borrow().last().copied());
        Span::open(parent, name, cat)
    }

    /// Open a span under an explicitly propagated parent handle (`None`
    /// starts a fresh root trace). This is how work shipped to another
    /// thread stays attached to the span that spawned it.
    pub fn child_of(parent: Option<SpanHandle>, name: &str, cat: &'static str) -> Span {
        Span::open(parent, name, cat)
    }

    /// The handle identifying this span, for explicit propagation to
    /// workers. `None` when the span is inert (tracing disabled).
    pub fn handle(&self) -> Option<SpanHandle> {
        self.live.as_ref().map(|l| l.handle)
    }

    /// Attach (or overwrite) a key/value argument carried into the export.
    pub fn arg(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(l) = &mut self.live {
            if let Some(slot) = l.args.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value.into();
            } else {
                l.args.push((key, value.into()));
            }
        }
    }

    /// True when the span actually records (tracing was enabled at open).
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(l) = self.live.take() else { return };
        let end_ns = now_ns();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // RAII guarantees LIFO on this thread; pop defensively anyway.
            if stack.last() == Some(&l.handle) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|h| *h == l.handle) {
                stack.remove(pos);
            }
        });
        push_event(TraceEvent {
            tid: tid(),
            name: l.name,
            cat: l.cat,
            trace: l.handle.trace,
            span: l.handle.span,
            parent: l.parent,
            kind: EventKind::Span {
                start_ns: l.start_ns,
                dur_ns: end_ns.saturating_sub(l.start_ns),
                seq_open: l.seq_open,
                seq_close: SEQ.fetch_add(1, Ordering::Relaxed),
            },
            args: l.args,
        });
    }
}

/// Add `ns` nanoseconds of busy time to worker slot `worker` (clamped into
/// the tracked range). `dm-par` calls this once per completed task.
pub fn worker_busy_add(worker: usize, ns: u64) {
    WORKER_BUSY_NS[worker.min(MAX_WORKERS - 1)].fetch_add(ns, Ordering::Relaxed);
}

/// Snapshot of the non-zero per-worker busy-time counters as
/// `(worker, busy_ns)` pairs.
pub fn worker_busy_snapshot() -> Vec<(usize, u64)> {
    WORKER_BUSY_NS
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let v = c.load(Ordering::Relaxed);
            (v > 0).then_some((i, v))
        })
        .collect()
}

/// Publish the per-worker busy-time counters into a recorder under
/// `par.worker.<i>.busy_ns` sites.
pub fn record_worker_busy(rec: &dyn crate::Recorder) {
    if !rec.is_enabled() {
        return;
    }
    for (i, ns) in worker_busy_snapshot() {
        rec.add(&format!("par.worker.{i}.busy_ns"), ns);
    }
}

/// Drain every buffered event (across all shards), ordered by open
/// sequence. Open spans that have not dropped yet are not included.
pub fn take_events() -> Vec<TraceEvent> {
    let mut all = Vec::new();
    for shard in &BUFFERS {
        all.append(&mut *shard.lock().expect("trace buffer poisoned"));
    }
    all.sort_by_key(|e| match e.kind {
        EventKind::Span { seq_open, .. } => seq_open,
        EventKind::Instant { seq, .. } => seq,
    });
    all
}

/// Clone of the buffered events without draining them, ordered like
/// [`take_events`].
pub fn snapshot_events() -> Vec<TraceEvent> {
    let mut all = Vec::new();
    for shard in &BUFFERS {
        all.extend(shard.lock().expect("trace buffer poisoned").iter().cloned());
    }
    all.sort_by_key(|e| match e.kind {
        EventKind::Span { seq_open, .. } => seq_open,
        EventKind::Instant { seq, .. } => seq,
    });
    all
}

/// Discard every buffered event and zero the per-worker busy counters.
/// Call between back-to-back profiled runs so samples do not bleed across.
pub fn clear() {
    for shard in &BUFFERS {
        shard.lock().expect("trace buffer poisoned").clear();
    }
    for c in &WORKER_BUSY_NS {
        c.store(0, Ordering::Relaxed);
    }
}

fn write_args(out: &mut String, ev: &TraceEvent) {
    let _ = write!(
        out,
        "\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}",
        ev.trace, ev.span, ev.parent
    );
    for (k, v) in &ev.args {
        let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
    }
    out.push('}');
}

/// Render events as Chrome trace-event JSON (the `traceEvents` array form
/// Perfetto and `chrome://tracing` load). Spans become matched `B`/`E`
/// pairs on their thread's track, instants become `i` events; every event
/// carries its trace/span/parent ids plus the span's own arguments in
/// `args`. Events are emitted in true open/close order (the global
/// sequence), so begin/end pairs are strictly nested per thread even when
/// nanosecond timestamps tie.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    // (seq, entry) triples so B and E interleave in real order.
    let mut entries: Vec<(u64, String)> = Vec::with_capacity(events.len() * 2);
    for ev in events {
        let name = escape_json(&ev.name);
        let cat = escape_json(ev.cat);
        match ev.kind {
            EventKind::Span { start_ns, dur_ns, seq_open, seq_close } => {
                let mut b = format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{},",
                    fmt_us(start_ns),
                    ev.tid
                );
                write_args(&mut b, ev);
                b.push('}');
                entries.push((seq_open, b));
                let e = format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    fmt_us(start_ns + dur_ns),
                    ev.tid
                );
                entries.push((seq_close, e));
            }
            EventKind::Instant { ts_ns, seq } => {
                let mut i = format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},",
                    fmt_us(ts_ns),
                    ev.tid
                );
                write_args(&mut i, ev);
                i.push('}');
                entries.push((seq, i));
            }
        }
    }
    entries.sort_by_key(|(seq, _)| *seq);
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, (_, e)) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Nanoseconds rendered as fractional microseconds (the Chrome trace `ts`
/// unit), keeping full nanosecond precision.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Write the Chrome trace of all buffered events to `path` (buffers are
/// left intact; callers that want a fresh start should [`clear`]).
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(&snapshot_events()))
}

/// Write the Chrome trace to the path named by `DMML_TRACE`, when set.
/// Returns the path written to.
pub fn write_env_trace() -> Option<std::io::Result<String>> {
    let path = env_trace_path()?;
    Some(write_chrome_trace(&path).map(|()| path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The trace buffers are process-global; tests that assert on their
    // contents serialize through this lock and clear first.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = lock();
        set_enabled(false);
        clear();
        {
            let mut s = Span::enter("noop", "test");
            assert!(!s.is_recording());
            assert!(s.handle().is_none());
            s.arg("k", "v");
            instant("nothing", &[]);
        }
        assert!(take_events().is_empty());
        assert_eq!(current(), None);
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let outer = Span::enter("outer", "test");
            let outer_h = outer.handle().unwrap();
            {
                let inner = Span::enter("inner", "test");
                let inner_h = inner.handle().unwrap();
                assert_eq!(inner_h.trace, outer_h.trace);
                assert_eq!(current(), Some(inner_h));
            }
            assert_eq!(current(), Some(outer_h));
        }
        set_enabled(false);
        let evs = take_events();
        assert_eq!(evs.len(), 2);
        // Inner closed first but events sort by open order.
        assert_eq!(evs[0].name, "outer");
        assert_eq!(evs[1].name, "inner");
        assert_eq!(evs[1].parent, evs[0].span);
        assert_eq!(evs[0].parent, 0);
    }

    #[test]
    fn cross_thread_child_links_to_explicit_parent() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let root = Span::enter("spawn", "test");
            let parent = root.handle();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut t = Span::child_of(parent, "task", "par");
                    t.arg("worker", "1");
                });
            });
        }
        set_enabled(false);
        let evs = take_events();
        assert_eq!(evs.len(), 2);
        let root = evs.iter().find(|e| e.name == "spawn").unwrap();
        let task = evs.iter().find(|e| e.name == "task").unwrap();
        assert_eq!(task.parent, root.span);
        assert_eq!(task.trace, root.trace);
        assert_ne!(task.tid, root.tid);
        assert_eq!(task.arg("worker"), Some("1"));
    }

    #[test]
    fn instants_attach_to_current_span() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let s = Span::enter("holder", "test");
            let h = s.handle().unwrap();
            instant("evt", &[("bytes", "12".into())]);
            drop(s);
            let evs = snapshot_events();
            let i = evs.iter().find(|e| e.name == "evt").unwrap();
            assert_eq!(i.parent, h.span);
            assert_eq!(i.dur_ns(), 0);
        }
        set_enabled(false);
        clear();
    }

    #[test]
    fn chrome_export_pairs_begin_end() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let _a = Span::enter("a", "test");
            let _b = Span::enter("b", "test");
        }
        instant("mark", &[]);
        set_enabled(false);
        let json = chrome_trace(&take_events());
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // b opened after a and closed before it: B a, B b, E b, E a.
        let pos = |needle: &str| json.find(needle).unwrap();
        assert!(
            pos("\"name\":\"a\",\"cat\":\"test\",\"ph\":\"B\"")
                < pos("\"name\":\"b\",\"cat\":\"test\",\"ph\":\"B\"")
        );
        assert!(
            pos("\"name\":\"b\",\"cat\":\"test\",\"ph\":\"E\"")
                < pos("\"name\":\"a\",\"cat\":\"test\",\"ph\":\"E\"")
        );
    }

    #[test]
    fn worker_busy_counters_accumulate_and_clear() {
        let _g = lock();
        clear();
        worker_busy_add(0, 100);
        worker_busy_add(0, 50);
        worker_busy_add(3, 7);
        let snap = worker_busy_snapshot();
        assert_eq!(snap, vec![(0, 150), (3, 7)]);
        let reg = crate::StatsRegistry::new();
        record_worker_busy(&reg);
        assert_eq!(reg.report().counter("par.worker.0.busy_ns"), Some(150));
        clear();
        assert!(worker_busy_snapshot().is_empty());
    }

    #[test]
    fn fmt_us_keeps_ns_precision() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(1_234_567), "1234.567");
        assert_eq!(fmt_us(999), "0.999");
    }
}
