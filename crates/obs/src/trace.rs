//! Structured tracing: RAII spans with trace/span/parent ids, collected into
//! mutex-sharded global buffers and exportable as Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`).
//!
//! The span model mirrors the introspection machinery of the surveyed
//! systems' fine-grained lineage tracing: every interesting unit of work —
//! one HOP-node evaluation, one `dm-par` worker task, one compression
//! planning phase — opens a [`Span`] on entry and records a *complete* event
//! (start + duration) when the span drops. Within one thread spans nest via
//! an implicit thread-local stack; across threads the parent is propagated
//! *explicitly*: the spawning side captures [`current`] (a [`SpanHandle`],
//! `Copy` and `Send`) and the worker opens its span with
//! [`Span::child_of`], so worker tasks nest under the executor node that
//! spawned them even though they run on other threads.
//!
//! Tracing is globally gated by an atomic flag ([`set_enabled`]); when
//! disabled, every entry point is a single relaxed atomic load and no
//! allocation or clock read happens. Buffers are process-global so that
//! leaf crates (`dm-par`, `dm-buffer`) need no handle threading; call
//! [`clear`] (or [`StatsRegistry::reset`](crate::StatsRegistry::reset),
//! which forwards to it) between profiled runs so samples do not bleed from
//! one run into the next.
//!
//! ```
//! use dm_obs::trace;
//!
//! trace::set_enabled(true);
//! trace::clear();
//! {
//!     let mut root = trace::Span::enter("eval", "exec");
//!     root.arg("op", "matmul");
//!     let parent = trace::current(); // explicit handle for cross-thread work
//!     std::thread::scope(|s| {
//!         s.spawn(move || {
//!             let _task = trace::Span::child_of(parent, "par.task", "par");
//!         });
//!     });
//!     trace::instant("pool.spill", &[("bytes", "4096".into())]);
//! }
//! let events = trace::take_events();
//! assert_eq!(events.len(), 3);
//! let json = trace::chrome_trace(&events);
//! assert!(json.contains("\"traceEvents\""));
//! trace::set_enabled(false);
//! ```

use crate::json::escape_json;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable naming the file the Chrome trace should be written
/// to. When set, [`env_trace_path`] returns the path, executors enable span
/// emission automatically, and [`write_env_trace`] performs the export.
pub const TRACE_ENV: &str = "DMML_TRACE";

/// Environment variable bounding the process-global event buffers (total
/// across shards). When the bound is hit the *oldest* events are evicted
/// ring-style and counted in [`dropped_events`]. `0` means unbounded.
pub const TRACE_MAX_EVENTS_ENV: &str = "DMML_TRACE_MAX_EVENTS";

/// Default total event-buffer capacity when `DMML_TRACE_MAX_EVENTS` is not
/// set: generous enough for any single profiled run, small enough that an
/// always-on server cannot grow without bound (~100 MB worst case).
pub const DEFAULT_MAX_EVENTS: usize = 262_144;

/// Number of mutex shards the global event buffer is split across. Threads
/// hash to a shard by thread id, so concurrent workers rarely contend.
const SHARDS: usize = 8;

/// Worker slots tracked by the per-worker busy-time counters.
const MAX_WORKERS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
// Global open/close sequence: assigned when a span opens and again when it
// closes, so sorting events by sequence reproduces the true nesting order
// even when nanosecond timestamps tie.
static SEQ: AtomicU64 = AtomicU64::new(1);

static BUFFERS: [Mutex<VecDeque<TraceEvent>>; SHARDS] =
    [const { Mutex::new(VecDeque::new()) }; SHARDS];

/// Events evicted from the ring since process start (monotonic; not reset by
/// [`clear`], so long-lived servers can export it as a counter).
static DROPPED: AtomicU64 = AtomicU64::new(0);

static WORKER_BUSY_NS: [AtomicU64; MAX_WORKERS] = [const { AtomicU64::new(0) }; MAX_WORKERS];

thread_local! {
    static STACK: RefCell<Vec<SpanHandle>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The clock origin shared by every event in the process, so timestamps from
/// different threads land on one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

/// Turn span collection on or off process-wide. Disabled tracing costs one
/// relaxed atomic load per instrumentation point.
pub fn set_enabled(on: bool) {
    // Pin the epoch before the first event so timestamps are small offsets.
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently collected.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The path named by the `DMML_TRACE` environment variable, if set and
/// non-empty.
pub fn env_trace_path() -> Option<String> {
    match std::env::var(TRACE_ENV) {
        Ok(p) if !p.trim().is_empty() => Some(p),
        _ => None,
    }
}

/// An identifier triple locating a span: the trace it belongs to, its own
/// id, and its parent's id (0 for roots). `Copy` and `Send` so it can be
/// captured by worker closures — this is the explicit parent propagation
/// that makes cross-thread tasks nest under the span that spawned them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle {
    /// Trace (one per root span) this span belongs to.
    pub trace: u64,
    /// This span's unique id.
    pub span: u64,
}

/// The span currently open on this thread, if any. Capture this before
/// spawning workers and pass it to [`Span::child_of`] inside them.
pub fn current() -> Option<SpanHandle> {
    if !is_enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied())
}

/// A span/instant argument value, stored unformatted until export so the
/// hot path (node ids, flop counts, byte sizes) never touches the string
/// formatting machinery. Rendered by [`chrome_trace`]: strings quoted,
/// numbers as bare JSON numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// A string value, JSON-quoted in the export.
    Str(Cow<'static, str>),
    /// An unsigned integer, exported as a bare number.
    U64(u64),
}

impl From<&'static str> for ArgVal {
    fn from(s: &'static str) -> ArgVal {
        ArgVal::Str(Cow::Borrowed(s))
    }
}

impl From<String> for ArgVal {
    fn from(s: String) -> ArgVal {
        ArgVal::Str(Cow::Owned(s))
    }
}

impl From<Cow<'static, str>> for ArgVal {
    fn from(s: Cow<'static, str>) -> ArgVal {
        ArgVal::Str(s)
    }
}

impl From<u64> for ArgVal {
    fn from(n: u64) -> ArgVal {
        ArgVal::U64(n)
    }
}

impl From<usize> for ArgVal {
    fn from(n: usize) -> ArgVal {
        ArgVal::U64(n as u64)
    }
}

impl std::fmt::Display for ArgVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgVal::Str(s) => f.write_str(s),
            ArgVal::U64(n) => write!(f, "{n}"),
        }
    }
}

/// What kind of event a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: begin/end pair in the Chrome export.
    Span {
        /// Nanoseconds from the process trace epoch to span open.
        start_ns: u64,
        /// Span duration in nanoseconds.
        dur_ns: u64,
        /// Global sequence number at open.
        seq_open: u64,
        /// Global sequence number at close.
        seq_close: u64,
    },
    /// A point-in-time instant event (`ph: "i"`).
    Instant {
        /// Nanoseconds from the process trace epoch.
        ts_ns: u64,
        /// Global sequence number.
        seq: u64,
    },
}

/// One collected event, as drained by [`take_events`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Small dense per-thread id (assigned in thread-creation order).
    pub tid: u64,
    /// Event name (op label, task label, event site). `Cow` so the common
    /// case — a static site name — records without a heap allocation.
    pub name: Cow<'static, str>,
    /// Category shown by trace viewers (`exec`, `par`, `buffer`, `compress`).
    pub cat: &'static str,
    /// Trace id of the owning trace (0 for instants outside any span).
    pub trace: u64,
    /// Span id (0 for instants).
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Span or instant payload.
    pub kind: EventKind,
    /// Key/value arguments (op name, dims, flops, worker id, bytes, ...).
    pub args: Vec<(&'static str, ArgVal)>,
}

impl TraceEvent {
    /// Duration of a span event, 0 for instants. Never negative by
    /// construction (computed from a monotonic clock).
    pub fn dur_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { dur_ns, .. } => dur_ns,
            EventKind::Instant { .. } => 0,
        }
    }

    /// Value of an argument by key rendered to a string, if attached.
    pub fn arg(&self, key: &str) -> Option<String> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v.to_string())
    }
}

/// Total event capacity across all shards. Initialized from
/// `DMML_TRACE_MAX_EVENTS` on first use; overridable via [`set_max_events`].
fn max_events() -> usize {
    cap_cell().load(Ordering::Relaxed)
}

fn cap_cell() -> &'static std::sync::atomic::AtomicUsize {
    static CAP: OnceLock<std::sync::atomic::AtomicUsize> = OnceLock::new();
    CAP.get_or_init(|| {
        let cap = std::env::var(TRACE_MAX_EVENTS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_EVENTS);
        std::sync::atomic::AtomicUsize::new(cap)
    })
}

/// Override the total event-buffer capacity (`0` = unbounded). Normally set
/// through `DMML_TRACE_MAX_EVENTS`; exposed so embedders and tests can bound
/// the ring without touching the process environment.
pub fn set_max_events(cap: usize) {
    cap_cell().store(cap, Ordering::Relaxed);
}

/// Events evicted because the ring was full, since process start. Monotonic
/// (never reset by [`clear`]) so it can be exported as a counter.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Publish the drop counter into a recorder as `obs.trace.dropped`. Safe to
/// call repeatedly (e.g. once per served request): only the events dropped
/// since the previous publish are added, so the recorder-side counter tracks
/// the cumulative total instead of double-counting.
pub fn record_dropped(rec: &dyn crate::Recorder) {
    static PUBLISHED: AtomicU64 = AtomicU64::new(0);
    if !rec.is_enabled() {
        return;
    }
    let total = dropped_events();
    let prev = PUBLISHED.swap(total, Ordering::Relaxed);
    if total > prev {
        rec.add("obs.trace.dropped", total - prev);
    }
}

fn push_event(ev: TraceEvent) {
    let shard = (ev.tid as usize) % SHARDS;
    let cap = max_events();
    // Per-shard slice of the total budget; ring-evict the oldest events so
    // an always-on server keeps the most recent window.
    let per_shard = if cap == 0 { usize::MAX } else { (cap / SHARDS).max(1) };
    let mut buf = BUFFERS[shard].lock().expect("trace buffer poisoned");
    while buf.len() >= per_shard {
        buf.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    buf.push_back(ev);
}

/// Record a point-in-time instant event, attached to the current span when
/// one is open. No-op when tracing is disabled.
pub fn instant(name: impl Into<Cow<'static, str>>, args: &[(&'static str, ArgVal)]) {
    if !is_enabled() {
        return;
    }
    let (trace, parent) = STACK.with(|s| s.borrow().last().map_or((0, 0), |h| (h.trace, h.span)));
    push_event(TraceEvent {
        tid: tid(),
        name: name.into(),
        cat: "instant",
        trace,
        span: 0,
        parent,
        kind: EventKind::Instant { ts_ns: now_ns(), seq: SEQ.fetch_add(1, Ordering::Relaxed) },
        args: args.to_vec(),
    });
}

/// An open span. Records a complete event (with duration) when dropped.
/// Inert (no allocation, no clock read, nothing recorded) when tracing was
/// disabled at open time.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    handle: SpanHandle,
    parent: u64,
    name: Cow<'static, str>,
    cat: &'static str,
    start_ns: u64,
    seq_open: u64,
    args: Vec<(&'static str, ArgVal)>,
}

impl Span {
    fn open(parent: Option<SpanHandle>, name: Cow<'static, str>, cat: &'static str) -> Span {
        if !is_enabled() {
            return Span { live: None };
        }
        let (trace, parent_id) = match parent {
            Some(p) => (p.trace, p.span),
            None => (NEXT_TRACE.fetch_add(1, Ordering::Relaxed), 0),
        };
        let handle = SpanHandle { trace, span: NEXT_SPAN.fetch_add(1, Ordering::Relaxed) };
        STACK.with(|s| s.borrow_mut().push(handle));
        Span {
            live: Some(LiveSpan {
                handle,
                parent: parent_id,
                name,
                cat,
                start_ns: now_ns(),
                seq_open: SEQ.fetch_add(1, Ordering::Relaxed),
                args: Vec::new(),
            }),
        }
    }

    /// Open a span as a child of the span currently on this thread's stack
    /// (a fresh root trace when the stack is empty).
    pub fn enter(name: impl Into<Cow<'static, str>>, cat: &'static str) -> Span {
        if !is_enabled() {
            return Span { live: None };
        }
        let parent = STACK.with(|s| s.borrow().last().copied());
        Span::open(parent, name.into(), cat)
    }

    /// Open a span under an explicitly propagated parent handle (`None`
    /// starts a fresh root trace). This is how work shipped to another
    /// thread stays attached to the span that spawned it.
    pub fn child_of(
        parent: Option<SpanHandle>,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
    ) -> Span {
        if !is_enabled() {
            return Span { live: None };
        }
        Span::open(parent, name.into(), cat)
    }

    /// The handle identifying this span, for explicit propagation to
    /// workers. `None` when the span is inert (tracing disabled).
    pub fn handle(&self) -> Option<SpanHandle> {
        self.live.as_ref().map(|l| l.handle)
    }

    /// Attach (or overwrite) a key/value argument carried into the export.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgVal>) {
        if let Some(l) = &mut self.live {
            if let Some(slot) = l.args.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value.into();
            } else {
                l.args.push((key, value.into()));
            }
        }
    }

    /// True when the span actually records (tracing was enabled at open).
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(l) = self.live.take() else { return };
        let end_ns = now_ns();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // RAII guarantees LIFO on this thread; pop defensively anyway.
            if stack.last() == Some(&l.handle) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|h| *h == l.handle) {
                stack.remove(pos);
            }
        });
        push_event(TraceEvent {
            tid: tid(),
            name: l.name,
            cat: l.cat,
            trace: l.handle.trace,
            span: l.handle.span,
            parent: l.parent,
            kind: EventKind::Span {
                start_ns: l.start_ns,
                dur_ns: end_ns.saturating_sub(l.start_ns),
                seq_open: l.seq_open,
                seq_close: SEQ.fetch_add(1, Ordering::Relaxed),
            },
            args: l.args,
        });
    }
}

/// Scratch for completed spans recorded by one thread and flushed to the
/// shared buffers with a single lock acquisition, instead of one per span.
/// Built for the serving layer's per-phase timers: a request times 5–7
/// phases, and paying a buffer lock (plus thread-local stack traffic) per
/// phase is measurable at microsecond request latencies.
///
/// Pending spans do NOT join the thread-local span stack: spans opened
/// while one is pending attach to the pending span's *parent* rather than
/// the pending span itself. Sequence numbers are still drawn from the
/// global counter at begin/end time, so batched events interleave in true
/// open/close order with children recorded live in between.
#[derive(Debug, Default)]
pub struct LocalSpans {
    events: Vec<TraceEvent>,
}

/// A span opened through [`LocalSpans::begin`] and not yet completed.
#[derive(Debug)]
pub struct PendingSpan {
    handle: SpanHandle,
    parent: u64,
    name: Cow<'static, str>,
    cat: &'static str,
    start_ns: u64,
    seq_open: u64,
}

impl LocalSpans {
    /// An empty scratch buffer.
    pub fn new() -> LocalSpans {
        LocalSpans::default()
    }

    /// Open a pending span under `parent` (a fresh root trace when `None`).
    /// Returns `None` when tracing is disabled.
    pub fn begin(
        &mut self,
        parent: Option<SpanHandle>,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
    ) -> Option<PendingSpan> {
        if !is_enabled() {
            return None;
        }
        let (trace, parent_id) = match parent {
            Some(p) => (p.trace, p.span),
            None => (NEXT_TRACE.fetch_add(1, Ordering::Relaxed), 0),
        };
        Some(PendingSpan {
            handle: SpanHandle { trace, span: NEXT_SPAN.fetch_add(1, Ordering::Relaxed) },
            parent: parent_id,
            name: name.into(),
            cat,
            start_ns: now_ns(),
            seq_open: SEQ.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Complete a pending span, buffering its event locally. Returns the
    /// span's duration in nanoseconds (on the same clock as the timeline),
    /// so callers timing a region need no extra clock reads.
    pub fn end(&mut self, p: PendingSpan) -> u64 {
        let dur_ns = now_ns().saturating_sub(p.start_ns);
        self.events.push(TraceEvent {
            tid: tid(),
            name: p.name,
            cat: p.cat,
            trace: p.handle.trace,
            span: p.handle.span,
            parent: p.parent,
            kind: EventKind::Span {
                start_ns: p.start_ns,
                dur_ns,
                seq_open: p.seq_open,
                seq_close: SEQ.fetch_add(1, Ordering::Relaxed),
            },
            args: Vec::new(),
        });
        dur_ns
    }

    /// Move every buffered event into the shared buffers. All events were
    /// recorded by this thread, so they land in one shard: one lock.
    pub fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let shard = (tid() as usize) % SHARDS;
        let cap = max_events();
        let per_shard = if cap == 0 { usize::MAX } else { (cap / SHARDS).max(1) };
        let mut buf = BUFFERS[shard].lock().expect("trace buffer poisoned");
        for ev in self.events.drain(..) {
            while buf.len() >= per_shard {
                buf.pop_front();
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
            buf.push_back(ev);
        }
    }
}

/// Add `ns` nanoseconds of busy time to worker slot `worker` (clamped into
/// the tracked range). `dm-par` calls this once per completed task.
pub fn worker_busy_add(worker: usize, ns: u64) {
    WORKER_BUSY_NS[worker.min(MAX_WORKERS - 1)].fetch_add(ns, Ordering::Relaxed);
}

/// Snapshot of the non-zero per-worker busy-time counters as
/// `(worker, busy_ns)` pairs.
pub fn worker_busy_snapshot() -> Vec<(usize, u64)> {
    WORKER_BUSY_NS
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let v = c.load(Ordering::Relaxed);
            (v > 0).then_some((i, v))
        })
        .collect()
}

/// Publish the per-worker busy-time counters into a recorder under
/// `par.worker.<i>.busy_ns` sites.
pub fn record_worker_busy(rec: &dyn crate::Recorder) {
    if !rec.is_enabled() {
        return;
    }
    for (i, ns) in worker_busy_snapshot() {
        rec.add(&format!("par.worker.{i}.busy_ns"), ns);
    }
}

/// Drain every buffered event (across all shards), ordered by open
/// sequence. Open spans that have not dropped yet are not included.
pub fn take_events() -> Vec<TraceEvent> {
    let mut all = Vec::new();
    for shard in &BUFFERS {
        all.extend(shard.lock().expect("trace buffer poisoned").drain(..));
    }
    all.sort_by_key(|e| match e.kind {
        EventKind::Span { seq_open, .. } => seq_open,
        EventKind::Instant { seq, .. } => seq,
    });
    all
}

/// Drain only the events belonging to one trace id (across all shards),
/// ordered by open sequence, leaving other traces buffered. This is how the
/// serving layer extracts one request's span tree from the shared buffers
/// without disturbing requests still in flight on other threads.
pub fn extract_trace(trace: u64) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for shard in &BUFFERS {
        let mut buf = shard.lock().expect("trace buffer poisoned");
        // Most shards hold no events for this trace (events land in the
        // serving thread's shard); skip the rebuild for those entirely.
        if !buf.iter().any(|ev| ev.trace == trace) {
            continue;
        }
        let mut kept = VecDeque::with_capacity(buf.len());
        for ev in buf.drain(..) {
            if ev.trace == trace {
                out.push(ev);
            } else {
                kept.push_back(ev);
            }
        }
        *buf = kept;
    }
    out.sort_by_key(|e| match e.kind {
        EventKind::Span { seq_open, .. } => seq_open,
        EventKind::Instant { seq, .. } => seq,
    });
    out
}

/// Clone of the buffered events without draining them, ordered like
/// [`take_events`].
pub fn snapshot_events() -> Vec<TraceEvent> {
    let mut all = Vec::new();
    for shard in &BUFFERS {
        all.extend(shard.lock().expect("trace buffer poisoned").iter().cloned());
    }
    all.sort_by_key(|e| match e.kind {
        EventKind::Span { seq_open, .. } => seq_open,
        EventKind::Instant { seq, .. } => seq,
    });
    all
}

/// Discard every buffered event and zero the per-worker busy counters.
/// Call between back-to-back profiled runs so samples do not bleed across.
pub fn clear() {
    for shard in &BUFFERS {
        shard.lock().expect("trace buffer poisoned").clear();
    }
    for c in &WORKER_BUSY_NS {
        c.store(0, Ordering::Relaxed);
    }
}

fn write_args(out: &mut String, ev: &TraceEvent) {
    let _ = write!(
        out,
        "\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}",
        ev.trace, ev.span, ev.parent
    );
    for (k, v) in &ev.args {
        match v {
            ArgVal::Str(s) => {
                let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(s));
            }
            ArgVal::U64(n) => {
                let _ = write!(out, ",\"{}\":{}", escape_json(k), n);
            }
        }
    }
    out.push('}');
}

/// Render events as Chrome trace-event JSON (the `traceEvents` array form
/// Perfetto and `chrome://tracing` load). Spans become matched `B`/`E`
/// pairs on their thread's track, instants become `i` events; every event
/// carries its trace/span/parent ids plus the span's own arguments in
/// `args`. Events are emitted in true open/close order (the global
/// sequence), so begin/end pairs are strictly nested per thread even when
/// nanosecond timestamps tie.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    // (seq, entry) triples so B and E interleave in real order.
    let mut entries: Vec<(u64, String)> = Vec::with_capacity(events.len() * 2);
    for ev in events {
        let name = escape_json(&ev.name);
        let cat = escape_json(ev.cat);
        match ev.kind {
            EventKind::Span { start_ns, dur_ns, seq_open, seq_close } => {
                let mut b = format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{},",
                    fmt_us(start_ns),
                    ev.tid
                );
                write_args(&mut b, ev);
                b.push('}');
                entries.push((seq_open, b));
                let e = format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    fmt_us(start_ns + dur_ns),
                    ev.tid
                );
                entries.push((seq_close, e));
            }
            EventKind::Instant { ts_ns, seq } => {
                let mut i = format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},",
                    fmt_us(ts_ns),
                    ev.tid
                );
                write_args(&mut i, ev);
                i.push('}');
                entries.push((seq, i));
            }
        }
    }
    entries.sort_by_key(|(seq, _)| *seq);
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, (_, e)) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Nanoseconds rendered as fractional microseconds (the Chrome trace `ts`
/// unit), keeping full nanosecond precision.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Write the Chrome trace of all buffered events to `path` (buffers are
/// left intact; callers that want a fresh start should [`clear`]).
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(&snapshot_events()))
}

/// Write the Chrome trace to the path named by `DMML_TRACE`, when set.
/// Returns the path written to.
pub fn write_env_trace() -> Option<std::io::Result<String>> {
    let path = env_trace_path()?;
    Some(write_chrome_trace(&path).map(|()| path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The trace buffers are process-global; tests that assert on their
    // contents serialize through this lock and clear first.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = lock();
        set_enabled(false);
        clear();
        {
            let mut s = Span::enter("noop", "test");
            assert!(!s.is_recording());
            assert!(s.handle().is_none());
            s.arg("k", "v");
            instant("nothing", &[]);
        }
        assert!(take_events().is_empty());
        assert_eq!(current(), None);
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let outer = Span::enter("outer", "test");
            let outer_h = outer.handle().unwrap();
            {
                let inner = Span::enter("inner", "test");
                let inner_h = inner.handle().unwrap();
                assert_eq!(inner_h.trace, outer_h.trace);
                assert_eq!(current(), Some(inner_h));
            }
            assert_eq!(current(), Some(outer_h));
        }
        set_enabled(false);
        let evs = take_events();
        assert_eq!(evs.len(), 2);
        // Inner closed first but events sort by open order.
        assert_eq!(evs[0].name, "outer");
        assert_eq!(evs[1].name, "inner");
        assert_eq!(evs[1].parent, evs[0].span);
        assert_eq!(evs[0].parent, 0);
    }

    #[test]
    fn cross_thread_child_links_to_explicit_parent() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let root = Span::enter("spawn", "test");
            let parent = root.handle();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut t = Span::child_of(parent, "task", "par");
                    t.arg("worker", "1");
                });
            });
        }
        set_enabled(false);
        let evs = take_events();
        assert_eq!(evs.len(), 2);
        let root = evs.iter().find(|e| e.name == "spawn").unwrap();
        let task = evs.iter().find(|e| e.name == "task").unwrap();
        assert_eq!(task.parent, root.span);
        assert_eq!(task.trace, root.trace);
        assert_ne!(task.tid, root.tid);
        assert_eq!(task.arg("worker").as_deref(), Some("1"));
    }

    #[test]
    fn instants_attach_to_current_span() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let s = Span::enter("holder", "test");
            let h = s.handle().unwrap();
            instant("evt", &[("bytes", "12".into())]);
            drop(s);
            let evs = snapshot_events();
            let i = evs.iter().find(|e| e.name == "evt").unwrap();
            assert_eq!(i.parent, h.span);
            assert_eq!(i.dur_ns(), 0);
        }
        set_enabled(false);
        clear();
    }

    #[test]
    fn chrome_export_pairs_begin_end() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let _a = Span::enter("a", "test");
            let _b = Span::enter("b", "test");
        }
        instant("mark", &[]);
        set_enabled(false);
        let json = chrome_trace(&take_events());
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // b opened after a and closed before it: B a, B b, E b, E a.
        let pos = |needle: &str| json.find(needle).unwrap();
        assert!(
            pos("\"name\":\"a\",\"cat\":\"test\",\"ph\":\"B\"")
                < pos("\"name\":\"b\",\"cat\":\"test\",\"ph\":\"B\"")
        );
        assert!(
            pos("\"name\":\"b\",\"cat\":\"test\",\"ph\":\"E\"")
                < pos("\"name\":\"a\",\"cat\":\"test\",\"ph\":\"E\"")
        );
    }

    #[test]
    fn worker_busy_counters_accumulate_and_clear() {
        let _g = lock();
        clear();
        worker_busy_add(0, 100);
        worker_busy_add(0, 50);
        worker_busy_add(3, 7);
        let snap = worker_busy_snapshot();
        assert_eq!(snap, vec![(0, 150), (3, 7)]);
        let reg = crate::StatsRegistry::new();
        record_worker_busy(&reg);
        assert_eq!(reg.report().counter("par.worker.0.busy_ns"), Some(150));
        clear();
        assert!(worker_busy_snapshot().is_empty());
    }

    #[test]
    fn ring_cap_evicts_oldest_and_counts_drops() {
        let _g = lock();
        set_enabled(true);
        clear();
        // Everything lands in one shard (single thread), so the effective
        // bound here is cap / SHARDS.
        set_max_events(4 * SHARDS);
        let before = dropped_events();
        for i in 0..10 {
            let mut s = Span::enter("spin", "test");
            s.arg("i", i.to_string());
        }
        set_enabled(false);
        set_max_events(0);
        let evs = take_events();
        assert_eq!(evs.len(), 4, "ring holds exactly the per-shard cap");
        // The survivors are the most recent spans.
        assert_eq!(evs.last().unwrap().arg("i").as_deref(), Some("9"));
        assert_eq!(dropped_events() - before, 6);
        set_max_events(DEFAULT_MAX_EVENTS);
    }

    #[test]
    fn extract_trace_takes_only_matching_events() {
        let _g = lock();
        set_enabled(true);
        clear();
        let a_trace = {
            let a = Span::enter("req.a", "test");
            let h = a.handle().unwrap();
            let _child = Span::child_of(Some(h), "a.work", "test");
            h.trace
        };
        {
            let _b = Span::enter("req.b", "test");
        }
        set_enabled(false);
        let a_events = extract_trace(a_trace);
        assert_eq!(a_events.len(), 2);
        assert!(a_events.iter().all(|e| e.trace == a_trace));
        assert_eq!(a_events[0].name, "req.a");
        let rest = take_events();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name, "req.b");
    }

    #[test]
    fn fmt_us_keeps_ns_precision() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(1_234_567), "1234.567");
        assert_eq!(fmt_us(999), "0.999");
    }
}
