//! Machine-readable expositions of a [`StatsReport`]: Prometheus text
//! format and a JSON document, for scraping or archiving alongside the
//! Chrome trace export of [`trace`](crate::trace).

use crate::histogram::HistogramSnapshot;
use crate::json::escape_json;
use crate::registry::StatsReport;
use std::fmt::Write as _;

/// Turn a dot-separated site path into a Prometheus metric name:
/// `buffer.pool.lru.hit` → `dmml_buffer_pool_lru_hit`. Characters outside
/// `[a-zA-Z0-9_]` become underscores.
fn metric_name(site: &str) -> String {
    let mut out = String::with_capacity(site.len() + 5);
    out.push_str("dmml_");
    for c in site.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn push_histogram_text(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} summary");
    for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render the full report in the Prometheus text exposition format:
/// counters as `counter`, gauges as `gauge` (with a `_peak` companion),
/// duration accumulators as `_count` / `_sum_ns` / `_min_ns` / `_max_ns`
/// series, histograms as `summary` metrics carrying p50/p95/p99 quantile
/// labels.
pub fn prometheus_text(report: &StatsReport) -> String {
    let mut out = String::new();
    for (site, v) in report.counters() {
        let name = metric_name(site);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (site, (cur, peak)) in report.gauges() {
        let name = metric_name(site);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {cur}");
        let _ = writeln!(out, "# TYPE {name}_peak gauge");
        let _ = writeln!(out, "{name}_peak {peak}");
    }
    for (site, d) in report.durations() {
        let name = metric_name(site);
        let _ = writeln!(out, "# TYPE {name}_count counter");
        let _ = writeln!(out, "{name}_count {}", d.count);
        let _ = writeln!(out, "# TYPE {name}_sum_ns counter");
        let _ = writeln!(out, "{name}_sum_ns {}", d.total_ns);
        let _ = writeln!(out, "# TYPE {name}_min_ns gauge");
        let _ = writeln!(out, "{name}_min_ns {}", d.min_ns);
        let _ = writeln!(out, "# TYPE {name}_max_ns gauge");
        let _ = writeln!(out, "{name}_max_ns {}", d.max_ns);
    }
    for (site, h) in report.histograms() {
        push_histogram_text(&mut out, &metric_name(site), h);
    }
    out
}

/// Render the full report as one JSON document:
/// `{"counters":{...},"gauges":{site:{"current","peak"}},"durations":{site:
/// {"count","total_ns","min_ns","max_ns"}},"histograms":{site:{"count",
/// "sum","min","max","p50","p95","p99"}}}`. Parseable back with
/// [`json::parse`](crate::json::parse).
pub fn stats_json(report: &StatsReport) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\":{");
    for (i, (site, v)) in report.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", escape_json(site));
    }
    out.push_str("},\"gauges\":{");
    for (i, (site, (cur, peak))) in report.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{{\"current\":{cur},\"peak\":{peak}}}", escape_json(site));
    }
    out.push_str("},\"durations\":{");
    for (i, (site, d)) in report.durations().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            escape_json(site),
            d.count,
            d.total_ns,
            d.min_ns,
            d.max_ns
        );
    }
    out.push_str("},\"histograms\":{");
    for (i, (site, h)) in report.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape_json(site),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50(),
            h.p95(),
            h.p99()
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::StatsRegistry;

    fn sample_report() -> StatsReport {
        let reg = StatsRegistry::new();
        reg.counter("pool.hit").add(42);
        reg.gauge("mem.used").set(100);
        reg.gauge("mem.used").set(64);
        reg.duration("exec.eval").record_ns(1_500);
        let h = reg.histogram("exec.node_self_ns");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        reg.report()
    }

    #[test]
    fn prometheus_text_covers_every_metric_kind() {
        let text = prometheus_text(&sample_report());
        assert!(text.contains("# TYPE dmml_pool_hit counter"), "{text}");
        assert!(text.contains("dmml_pool_hit 42"), "{text}");
        assert!(text.contains("dmml_mem_used 64"), "{text}");
        assert!(text.contains("dmml_mem_used_peak 100"), "{text}");
        assert!(text.contains("dmml_exec_eval_count 1"), "{text}");
        assert!(text.contains("dmml_exec_eval_sum_ns 1500"), "{text}");
        assert!(text.contains("# TYPE dmml_exec_node_self_ns summary"), "{text}");
        assert!(text.contains("dmml_exec_node_self_ns{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("dmml_exec_node_self_ns_count 3"), "{text}");
    }

    #[test]
    fn json_export_parses_back() {
        let doc = stats_json(&sample_report());
        let v = json::parse(&doc).expect("well-formed JSON");
        assert_eq!(v.get("counters").unwrap().get("pool.hit").unwrap().as_f64(), Some(42.0));
        let g = v.get("gauges").unwrap().get("mem.used").unwrap();
        assert_eq!(g.get("current").unwrap().as_f64(), Some(64.0));
        assert_eq!(g.get("peak").unwrap().as_f64(), Some(100.0));
        let d = v.get("durations").unwrap().get("exec.eval").unwrap();
        assert_eq!(d.get("total_ns").unwrap().as_f64(), Some(1500.0));
        let h = v.get("histograms").unwrap().get("exec.node_self_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(3.0));
        assert!(h.get("p99").unwrap().as_f64().unwrap() >= h.get("p50").unwrap().as_f64().unwrap());
    }

    #[test]
    fn empty_report_exports_cleanly() {
        let rep = StatsRegistry::new().report();
        assert_eq!(prometheus_text(&rep), "");
        let v = json::parse(&stats_json(&rep)).unwrap();
        assert_eq!(v.get("counters").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("buffer.pool.lru.hit"), "dmml_buffer_pool_lru_hit");
        assert_eq!(metric_name("a-b c"), "dmml_a_b_c");
    }
}
