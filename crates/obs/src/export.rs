//! Machine-readable expositions of a [`StatsReport`]: Prometheus text
//! format and a JSON document, for scraping or archiving alongside the
//! Chrome trace export of [`trace`](crate::trace).

use crate::histogram::HistogramSnapshot;
use crate::json::escape_json;
use crate::registry::StatsReport;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Turn a dot-separated site path into a Prometheus metric name:
/// `buffer.pool.lru.hit` → `dmml_buffer_pool_lru_hit`. Characters outside
/// `[a-zA-Z0-9_]` become underscores (the `dmml_` prefix guarantees a legal
/// leading character).
fn metric_name(site: &str) -> String {
    let mut out = String::with_capacity(site.len() + 5);
    out.push_str("dmml_");
    for c in site.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Sanitization maps distinct sites onto one name (`exec.eval` and
/// `exec-eval` both become `dmml_exec_eval`); a scraper rejects the
/// duplicate `# TYPE` lines that would produce. The deduper suffixes
/// repeats with `_2`, `_3`, … so every exported family name is unique.
#[derive(Default)]
struct NameDeduper {
    seen: HashSet<String>,
}

impl NameDeduper {
    fn claim(&mut self, site: &str) -> String {
        let base = metric_name(site);
        if self.seen.insert(base.clone()) {
            return base;
        }
        let mut n = 2;
        loop {
            let candidate = format!("{base}_{n}");
            if self.seen.insert(candidate.clone()) {
                return candidate;
            }
            n += 1;
        }
    }
}

fn push_histogram_text(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} summary");
    for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render the full report in the Prometheus text exposition format:
/// counters as `counter`, gauges as `gauge` (with a `_peak` companion),
/// duration accumulators as `_count` / `_sum_ns` / `_min_ns` / `_max_ns`
/// series, histograms as `summary` metrics carrying p50/p95/p99 quantile
/// labels.
pub fn prometheus_text(report: &StatsReport) -> String {
    let mut out = String::new();
    let mut names = NameDeduper::default();
    for (site, v) in report.counters() {
        let name = names.claim(site);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (site, (cur, peak)) in report.gauges() {
        let name = names.claim(site);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {cur}");
        let _ = writeln!(out, "# TYPE {name}_peak gauge");
        let _ = writeln!(out, "{name}_peak {peak}");
    }
    for (site, d) in report.durations() {
        let name = names.claim(site);
        let _ = writeln!(out, "# TYPE {name}_count counter");
        let _ = writeln!(out, "{name}_count {}", d.count);
        let _ = writeln!(out, "# TYPE {name}_sum_ns counter");
        let _ = writeln!(out, "{name}_sum_ns {}", d.total_ns);
        let _ = writeln!(out, "# TYPE {name}_min_ns gauge");
        let _ = writeln!(out, "{name}_min_ns {}", d.min_ns);
        let _ = writeln!(out, "# TYPE {name}_max_ns gauge");
        let _ = writeln!(out, "{name}_max_ns {}", d.max_ns);
    }
    for (site, h) in report.histograms() {
        let name = names.claim(site);
        push_histogram_text(&mut out, &name, h);
    }
    out
}

/// Render the full report as one JSON document:
/// `{"counters":{...},"gauges":{site:{"current","peak"}},"durations":{site:
/// {"count","total_ns","min_ns","max_ns"}},"histograms":{site:{"count",
/// "sum","min","max","p50","p95","p99"}}}`. Parseable back with
/// [`json::parse`](crate::json::parse).
pub fn stats_json(report: &StatsReport) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\":{");
    for (i, (site, v)) in report.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", escape_json(site));
    }
    out.push_str("},\"gauges\":{");
    for (i, (site, (cur, peak))) in report.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{{\"current\":{cur},\"peak\":{peak}}}", escape_json(site));
    }
    out.push_str("},\"durations\":{");
    for (i, (site, d)) in report.durations().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            escape_json(site),
            d.count,
            d.total_ns,
            d.min_ns,
            d.max_ns
        );
    }
    out.push_str("},\"histograms\":{");
    for (i, (site, h)) in report.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape_json(site),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50(),
            h.p95(),
            h.p99()
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::StatsRegistry;

    fn sample_report() -> StatsReport {
        let reg = StatsRegistry::new();
        reg.counter("pool.hit").add(42);
        reg.gauge("mem.used").set(100);
        reg.gauge("mem.used").set(64);
        reg.duration("exec.eval").record_ns(1_500);
        let h = reg.histogram("exec.node_self_ns");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        reg.report()
    }

    #[test]
    fn prometheus_text_covers_every_metric_kind() {
        let text = prometheus_text(&sample_report());
        assert!(text.contains("# TYPE dmml_pool_hit counter"), "{text}");
        assert!(text.contains("dmml_pool_hit 42"), "{text}");
        assert!(text.contains("dmml_mem_used 64"), "{text}");
        assert!(text.contains("dmml_mem_used_peak 100"), "{text}");
        assert!(text.contains("dmml_exec_eval_count 1"), "{text}");
        assert!(text.contains("dmml_exec_eval_sum_ns 1500"), "{text}");
        assert!(text.contains("# TYPE dmml_exec_node_self_ns summary"), "{text}");
        assert!(text.contains("dmml_exec_node_self_ns{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("dmml_exec_node_self_ns_count 3"), "{text}");
    }

    #[test]
    fn json_export_parses_back() {
        let doc = stats_json(&sample_report());
        let v = json::parse(&doc).expect("well-formed JSON");
        assert_eq!(v.get("counters").unwrap().get("pool.hit").unwrap().as_f64(), Some(42.0));
        let g = v.get("gauges").unwrap().get("mem.used").unwrap();
        assert_eq!(g.get("current").unwrap().as_f64(), Some(64.0));
        assert_eq!(g.get("peak").unwrap().as_f64(), Some(100.0));
        let d = v.get("durations").unwrap().get("exec.eval").unwrap();
        assert_eq!(d.get("total_ns").unwrap().as_f64(), Some(1500.0));
        let h = v.get("histograms").unwrap().get("exec.node_self_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(3.0));
        assert!(h.get("p99").unwrap().as_f64().unwrap() >= h.get("p50").unwrap().as_f64().unwrap());
    }

    #[test]
    fn empty_report_exports_cleanly() {
        let rep = StatsRegistry::new().report();
        assert_eq!(prometheus_text(&rep), "");
        let v = json::parse(&stats_json(&rep)).unwrap();
        assert_eq!(v.get("counters").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("buffer.pool.lru.hit"), "dmml_buffer_pool_lru_hit");
        assert_eq!(metric_name("a-b c"), "dmml_a_b_c");
    }

    #[test]
    fn colliding_sites_export_unique_names() {
        let reg = StatsRegistry::new();
        // Three sites that all sanitize to dmml_exec_eval.
        reg.counter("exec.eval").add(1);
        reg.counter("exec-eval").add(2);
        reg.counter("exec eval").add(3);
        let text = prometheus_text(&reg.report());
        let families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let unique: std::collections::HashSet<&&str> = families.iter().collect();
        assert_eq!(families.len(), unique.len(), "duplicate TYPE families in:\n{text}");
        assert!(text.contains("dmml_exec_eval "), "{text}");
        assert!(text.contains("dmml_exec_eval_2 "), "{text}");
        assert!(text.contains("dmml_exec_eval_3 "), "{text}");
    }

    /// A Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    fn is_valid_metric_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Every line of the exposition must be a `# TYPE <name> <kind>`
    /// comment or a `<name>[{label="value"}] <number>` sample, with legal
    /// metric names throughout — the conformance contract real scrapers
    /// hold us to.
    #[test]
    fn prometheus_text_conforms_to_exposition_format() {
        let reg = StatsRegistry::new();
        reg.counter("pool.hit").add(42);
        reg.counter("weird site-name.0").add(1);
        reg.gauge("mem.used").set(64);
        reg.duration("exec.eval").record_ns(1_500);
        let h = reg.histogram("lang.exec.node_self_ns");
        for v in [100u64, 200, 300, 5_000] {
            h.record(v);
        }
        let text = prometheus_text(&reg.report());
        assert!(!text.is_empty());
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("TYPE line has a name");
                let kind = parts.next().expect("TYPE line has a kind");
                assert!(is_valid_metric_name(name), "bad metric name {name:?} in {line:?}");
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped"),
                    "bad metric kind {kind:?} in {line:?}"
                );
                assert!(parts.next().is_none(), "trailing tokens in {line:?}");
                continue;
            }
            // Sample line: name, optional {labels}, one numeric value.
            let (series, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {line:?}"));
            assert!(value.parse::<f64>().is_ok(), "non-numeric value {value:?} in {line:?}");
            let name = series.split('{').next().unwrap();
            assert!(is_valid_metric_name(name), "bad metric name {name:?} in {line:?}");
            if let Some(labels) = series.strip_prefix(name) {
                if !labels.is_empty() {
                    assert!(
                        labels.starts_with('{') && labels.ends_with('}'),
                        "malformed labels {labels:?} in {line:?}"
                    );
                    for pair in labels[1..labels.len() - 1].split(',') {
                        let (k, v) = pair.split_once('=').expect("label has =");
                        assert!(is_valid_metric_name(k), "bad label name {k:?}");
                        assert!(v.starts_with('"') && v.ends_with('"'), "unquoted label {v:?}");
                    }
                }
            }
        }
    }
}
