//! The stats registry: named metrics created on demand, snapshotted into a
//! sorted, renderable report.

use crate::histogram::{HistogramSnapshot, LogHistogram};
use crate::stats::{fmt_ns, Counter, DurationSnapshot, DurationStat, Gauge};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A registry of named [`Counter`]s, [`Gauge`]s, [`DurationStat`]s, and
/// [`LogHistogram`]s.
///
/// Metric handles are `Arc`s: a call site looks its handle up once (taking a
/// short mutex) and afterwards updates it lock-free. Site names are
/// dot-separated paths (`"buffer.lru.hit"`, `"lang.exec.eval"`); the report
/// sorts lexicographically, so related metrics group together.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    durations: Mutex<BTreeMap<String, Arc<DurationStat>>>,
    histograms: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `site`.
    pub fn counter(&self, site: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("stats registry poisoned");
        Arc::clone(map.entry(site.to_owned()).or_default())
    }

    /// Get or create the gauge named `site`.
    pub fn gauge(&self, site: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("stats registry poisoned");
        Arc::clone(map.entry(site.to_owned()).or_default())
    }

    /// Get or create the duration accumulator named `site`.
    pub fn duration(&self, site: &str) -> Arc<DurationStat> {
        let mut map = self.durations.lock().expect("stats registry poisoned");
        Arc::clone(map.entry(site.to_owned()).or_default())
    }

    /// Get or create the latency histogram named `site`. Histograms are
    /// log-linear ([`LogHistogram`]): p50/p95/p99 in the report are within
    /// 6.25% of the true sample values at any magnitude.
    pub fn histogram(&self, site: &str) -> Arc<LogHistogram> {
        let mut map = self.histograms.lock().expect("stats registry poisoned");
        Arc::clone(map.entry(site.to_owned()).or_default())
    }

    /// Snapshot every metric into a sorted report.
    pub fn report(&self) -> StatsReport {
        let counters = self
            .counters
            .lock()
            .expect("stats registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("stats registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), (v.get(), v.peak())))
            .collect();
        let durations = self
            .durations
            .lock()
            .expect("stats registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("stats registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        StatsReport { counters, gauges, durations, histograms }
    }

    /// Reset every registered metric to its empty state (handles stay
    /// valid), **including histograms**, and clear the process-global trace
    /// buffers and per-worker busy counters
    /// ([`trace::clear`](crate::trace::clear)) — so back-to-back profiled
    /// runs do not bleed samples into each other.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("stats registry poisoned").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("stats registry poisoned").values() {
            g.reset();
        }
        for d in self.durations.lock().expect("stats registry poisoned").values() {
            d.reset();
        }
        for h in self.histograms.lock().expect("stats registry poisoned").values() {
            h.reset();
        }
        crate::trace::clear();
    }
}

/// A point-in-time snapshot of a [`StatsRegistry`], sorted by site name.
///
/// The `Display` impl renders a SystemML `-stats`-style block; the accessor
/// methods serve tests and programmatic consumers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, (u64, u64))>, // (current, peak)
    durations: Vec<(String, DurationSnapshot)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl StatsReport {
    /// Value of a counter, if registered.
    pub fn counter(&self, site: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == site).map(|(_, v)| *v)
    }

    /// `(current, peak)` of a gauge, if registered.
    pub fn gauge(&self, site: &str) -> Option<(u64, u64)> {
        self.gauges.iter().find(|(k, _)| k == site).map(|(_, v)| *v)
    }

    /// Snapshot of a duration accumulator, if registered.
    pub fn duration(&self, site: &str) -> Option<DurationSnapshot> {
        self.durations.iter().find(|(k, _)| k == site).map(|(_, v)| *v)
    }

    /// Snapshot of a latency histogram, if registered.
    pub fn histogram(&self, site: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == site).map(|(_, v)| v)
    }

    /// All counters, sorted by site.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges as `(site, (current, peak))`, sorted by site.
    pub fn gauges(&self) -> &[(String, (u64, u64))] {
        &self.gauges
    }

    /// All duration accumulators, sorted by site.
    pub fn durations(&self) -> &[(String, DurationSnapshot)] {
        &self.durations
    }

    /// All latency histograms, sorted by site.
    pub fn histograms(&self) -> &[(String, HistogramSnapshot)] {
        &self.histograms
    }

    /// True when no metric was ever registered — the signature of a run under
    /// the no-op recorder.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.durations.is_empty()
            && self.histograms.is_empty()
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no stats recorded)");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (site, v) in &self.counters {
                writeln!(f, "  {site:<40} {v:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges (current / peak):")?;
            for (site, (cur, peak)) in &self.gauges {
                writeln!(f, "  {site:<40} {cur:>12} / {peak}")?;
            }
        }
        if !self.durations.is_empty() {
            writeln!(f, "timings (count, total, mean, min..max):")?;
            for (site, s) in &self.durations {
                writeln!(
                    f,
                    "  {site:<40} {:>6}x {:>10} {:>10} {}..{}",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns),
                )?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms (count, p50 / p95 / p99, min..max):")?;
            for (site, h) in &self.histograms {
                writeln!(
                    f,
                    "  {site:<40} {:>6}x {} / {} / {} {}..{}",
                    h.count,
                    fmt_ns(h.p50()),
                    fmt_ns(h.p95()),
                    fmt_ns(h.p99()),
                    fmt_ns(h.min),
                    fmt_ns(h.max),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = StatsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.report().counter("x"), Some(5));
    }

    #[test]
    fn report_is_sorted_and_queryable() {
        let r = StatsRegistry::new();
        r.counter("b.two").incr();
        r.counter("a.one").add(7);
        r.gauge("mem").set(100);
        r.gauge("mem").set(40);
        r.duration("t").record_ns(500);
        let rep = r.report();
        let names: Vec<&str> = rep.counters().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
        assert_eq!(rep.gauge("mem"), Some((40, 100)));
        assert_eq!(rep.duration("t").unwrap().count, 1);
        assert_eq!(rep.counter("missing"), None);
        let text = rep.to_string();
        assert!(text.contains("a.one") && text.contains("40 / 100"));
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let rep = StatsRegistry::new().report();
        assert!(rep.is_empty());
        assert!(rep.to_string().contains("no stats recorded"));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let r = StatsRegistry::new();
        let c = r.counter("n");
        c.add(9);
        r.duration("d").record_ns(10);
        let h = r.histogram("lat");
        h.record(1_000);
        r.reset();
        assert_eq!(r.report().counter("n"), Some(0));
        assert_eq!(r.report().duration("d").unwrap().count, 0);
        // Histograms reset too — back-to-back runs must not bleed samples.
        assert_eq!(r.report().histogram("lat").unwrap().count, 0);
        c.incr();
        h.record(5);
        assert_eq!(r.report().counter("n"), Some(1));
        assert_eq!(r.report().histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn histogram_sites_render_quantiles() {
        let r = StatsRegistry::new();
        let h = r.histogram("exec.node_self_ns");
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let rep = r.report();
        let snap = rep.histogram("exec.node_self_ns").unwrap();
        assert_eq!(snap.count, 5);
        assert!(snap.p99() > snap.p50());
        let text = rep.to_string();
        assert!(text.contains("histograms (count, p50 / p95 / p99"), "{text}");
        assert!(text.contains("exec.node_self_ns"), "{text}");
    }
}
