//! Per-request flight recorder: a fixed-size, lock-sharded ring of completed
//! request records for the scoring server, always on and bounded.
//!
//! Process-global metrics (`/metrics`) can show p99 rising, but cannot answer
//! *why this request was slow* — queueing, a cold plan-cache compile,
//! batch-wait, or the kernel itself. The flight recorder closes that gap the
//! way database engines keep a statement log: every completed request leaves
//! a [`RequestRecord`] with its per-phase latency breakdown
//! ([`Phase`]), plan-cache key and hit/miss, byte counts, kernel summary,
//! calibrated-vs-actual cost, and its full span buffer (the per-request
//! slice of the [`trace`](crate::trace) ring), so a Chrome trace of any
//! recent request can be rendered on demand — no restart, no `DMML_TRACE`.
//!
//! Requests slower than the configured threshold (`DMML_SERVE_SLOW_MS`, or a
//! self-tuning p99-based threshold when unset) are additionally retained in a
//! separate *slow ring* that outlives the recent ring's churn, so the worst
//! offenders of the last window stay diagnosable even under high QPS.
//!
//! Everything is bounded: the recent ring holds [`FlightRecorder::capacity`]
//! records, the slow ring [`SLOW_RING_CAP`], and each record's span buffer is
//! whatever the bounded trace ring had for that request.
//!
//! ```
//! use dm_obs::flightrec::{FlightRecorder, Phase, RequestRecord};
//!
//! let fr = FlightRecorder::new(16, None);
//! let id = fr.next_id();
//! let mut rec = RequestRecord::new(id, "tenant-a");
//! rec.phase_ns[Phase::Execute.index()] = 1_000_000;
//! rec.total_ns = 1_200_000;
//! fr.record(rec);
//! assert_eq!(fr.recent(8).len(), 1);
//! assert!(fr.get(id).is_some());
//! ```

use crate::json::escape_json;
use crate::trace::{self, TraceEvent};
use crate::LogHistogram;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable naming the slow-request threshold in milliseconds.
/// When unset, the recorder self-tunes: once enough samples accumulate, any
/// request above the observed p99 is captured as slow.
pub const SLOW_MS_ENV: &str = "DMML_SERVE_SLOW_MS";

/// Environment variable bounding the recent-request ring (total records).
pub const FLIGHT_CAP_ENV: &str = "DMML_SERVE_FLIGHT_CAP";

/// Default recent-ring capacity when `DMML_SERVE_FLIGHT_CAP` is unset.
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// Capacity of the slow ring (worst-of-window retention).
pub const SLOW_RING_CAP: usize = 32;

/// Samples required before the self-tuning p99 threshold activates.
const SELF_TUNE_MIN_SAMPLES: u64 = 64;

/// Lock shards for the recent ring; writers hash by request id.
const SHARDS: usize = 8;

/// One phase of a served request's lifecycle, in pipeline order. Names
/// match the `serve.phase.<name>` histogram sites in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Frame read + JSON parse of the request body.
    Decode,
    /// Plan-cache probe (key construction + LRU lookup).
    CacheLookup,
    /// Full compile on a cache miss (parse → optimize → plan → certify).
    Compile,
    /// Admission control: session-ledger reservation against the budget.
    Admission,
    /// Waiting for the micro-batch to fill (leader deadline or follower
    /// wait, which includes the leader's execution of the fused batch).
    BatchWait,
    /// Plan execution (kernel time proper).
    Execute,
    /// Response serialization + frame write.
    Encode,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 7] = [
        Phase::Decode,
        Phase::CacheLookup,
        Phase::Compile,
        Phase::Admission,
        Phase::BatchWait,
        Phase::Execute,
        Phase::Encode,
    ];

    /// Number of phases (length of [`RequestRecord::phase_ns`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index into [`RequestRecord::phase_ns`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Snake-case phase name used in JSON and histogram sites.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::CacheLookup => "cache_lookup",
            Phase::Compile => "compile",
            Phase::Admission => "admission",
            Phase::BatchWait => "batch_wait",
            Phase::Execute => "execute",
            Phase::Encode => "encode",
        }
    }

    /// Registry histogram site for this phase (`serve.phase.<name>`).
    pub fn site(self) -> &'static str {
        match self {
            Phase::Decode => "serve.phase.decode",
            Phase::CacheLookup => "serve.phase.cache_lookup",
            Phase::Compile => "serve.phase.compile",
            Phase::Admission => "serve.phase.admission",
            Phase::BatchWait => "serve.phase.batch_wait",
            Phase::Execute => "serve.phase.execute",
            Phase::Encode => "serve.phase.encode",
        }
    }
}

/// The completed-request record the serving path deposits after every
/// request, successful or not. All fields are plain data; the record is
/// immutable once recorded (the recorder hands out `Arc`s).
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Server-assigned request id (also the trace id of its span tree).
    pub id: u64,
    /// Tenant the request authenticated as.
    pub tenant: String,
    /// Plan-cache key (structural hash + size classes), empty for requests
    /// that never reached planning.
    pub plan_key: String,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Whether the request was served through the micro-batcher.
    pub batched: bool,
    /// Error string for failed requests.
    pub error: Option<String>,
    /// Per-phase wall time, indexed by [`Phase::index`].
    pub phase_ns: [u64; Phase::COUNT],
    /// End-to-end wall time (read first byte → response flushed).
    pub total_ns: u64,
    /// Request frame size in bytes.
    pub bytes_in: u64,
    /// Response frame size in bytes.
    pub bytes_out: u64,
    /// Kernel summary from the plan (op/kernel pairs), empty if unavailable.
    pub kernel_summary: String,
    /// Calibrated cost-model estimate for the executed plan, in
    /// nanoseconds; 0 when no estimate was available.
    pub est_cost_ns: u64,
    /// Memory certificate summary (certified peak bytes), 0 if unplanned.
    pub certified_peak: u64,
    /// Marked slow at record time (explicit or self-tuned threshold).
    pub slow: bool,
    /// The request's retained span buffer: every trace event whose trace id
    /// equals [`id`](RequestRecord::id), extracted from the global ring.
    pub events: Vec<TraceEvent>,
}

impl RequestRecord {
    /// A zeroed record for request `id` from `tenant`; the serving path
    /// fills fields in as the request progresses.
    pub fn new(id: u64, tenant: &str) -> RequestRecord {
        RequestRecord {
            id,
            tenant: tenant.to_owned(),
            plan_key: String::new(),
            cache_hit: false,
            batched: false,
            error: None,
            phase_ns: [0; Phase::COUNT],
            total_ns: 0,
            bytes_in: 0,
            bytes_out: 0,
            kernel_summary: String::new(),
            est_cost_ns: 0,
            certified_peak: 0,
            slow: false,
            events: Vec::new(),
        }
    }

    /// Sum of the per-phase times (should approximate
    /// [`total_ns`](RequestRecord::total_ns); the gap is unattributed time).
    pub fn phase_sum_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Render this record as a JSON object (one entry of `/debug/requests`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"id\":{},\"tenant\":\"{}\",\"plan_key\":\"{}\",\"cache_hit\":{},\"batched\":{},\"slow\":{}",
            self.id,
            escape_json(&self.tenant),
            escape_json(&self.plan_key),
            self.cache_hit,
            self.batched,
            self.slow,
        );
        match &self.error {
            Some(e) => {
                let _ = write!(out, ",\"error\":\"{}\"", escape_json(e));
            }
            None => out.push_str(",\"error\":null"),
        }
        let _ = write!(
            out,
            ",\"total_ns\":{},\"bytes_in\":{},\"bytes_out\":{},\"est_cost_ns\":{},\"certified_peak\":{},\"kernels\":\"{}\"",
            self.total_ns,
            self.bytes_in,
            self.bytes_out,
            self.est_cost_ns,
            self.certified_peak,
            escape_json(&self.kernel_summary),
        );
        out.push_str(",\"phases\":{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", p.name(), self.phase_ns[p.index()]);
        }
        let _ = write!(
            out,
            "}},\"phase_sum_ns\":{},\"trace_events\":{}}}",
            self.phase_sum_ns(),
            self.events.len()
        );
        out
    }
}

/// The fixed-size, lock-sharded ring of completed [`RequestRecord`]s, plus
/// the slow ring and the self-tuning latency threshold. One instance lives
/// in the scoring server's shared state; the [`MetricsServer`](crate::serve)
/// renders it under `/debug/*`.
pub struct FlightRecorder {
    shards: [Mutex<VecDeque<Arc<RequestRecord>>>; SHARDS],
    slow: Mutex<VecDeque<Arc<RequestRecord>>>,
    next_id: AtomicU64,
    capacity: usize,
    slow_threshold: Option<Duration>,
    latency: LogHistogram,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("slow_threshold", &self.slow_threshold)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` recent records. `slow_threshold`
    /// is the explicit slow-capture bar; `None` enables the self-tuning
    /// p99-based threshold.
    pub fn new(capacity: usize, slow_threshold: Option<Duration>) -> FlightRecorder {
        FlightRecorder {
            shards: [const { Mutex::new(VecDeque::new()) }; SHARDS],
            slow: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(1),
            capacity: capacity.max(SHARDS),
            slow_threshold,
            latency: LogHistogram::new(),
        }
    }

    /// A recorder configured from `DMML_SERVE_FLIGHT_CAP` and
    /// `DMML_SERVE_SLOW_MS`.
    pub fn from_env() -> FlightRecorder {
        let cap = std::env::var(FLIGHT_CAP_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_FLIGHT_CAP);
        let slow = std::env::var(SLOW_MS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis);
        FlightRecorder::new(cap, slow)
    }

    /// Total recent-ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate the next request id. Ids are dense, process-unique, and
    /// double as the trace id of the request's span tree.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The slow-capture bar in nanoseconds right now: the explicit
    /// threshold when configured, otherwise the observed p99 once
    /// [`SELF_TUNE_MIN_SAMPLES`] requests have completed (`None` before
    /// that — nothing is slow until there is a distribution to be slow
    /// *against*).
    pub fn slow_threshold_ns(&self) -> Option<u64> {
        if let Some(d) = self.slow_threshold {
            return Some(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
        if self.latency.count() >= SELF_TUNE_MIN_SAMPLES {
            return Some(self.latency.snapshot().quantile(0.99));
        }
        None
    }

    /// Deposit a completed record. Sets the record's `slow` flag from the
    /// current threshold, feeds the latency distribution, and retains slow
    /// records in the slow ring. Returns the shared record.
    pub fn record(&self, mut rec: RequestRecord) -> Arc<RequestRecord> {
        // Threshold is computed before this sample lands, so a single
        // outlier cannot raise the bar enough to hide itself.
        rec.slow = self.slow_threshold_ns().is_some_and(|t| rec.total_ns > t) || rec.slow;
        self.latency.record(rec.total_ns);
        let rec = Arc::new(rec);
        let per_shard = (self.capacity / SHARDS).max(1);
        let shard = (rec.id as usize) % SHARDS;
        {
            let mut ring = self.shards[shard].lock().expect("flight ring poisoned");
            while ring.len() >= per_shard {
                ring.pop_front();
            }
            ring.push_back(Arc::clone(&rec));
        }
        if rec.slow {
            let mut slow = self.slow.lock().expect("slow ring poisoned");
            while slow.len() >= SLOW_RING_CAP {
                // Evict the *fastest* slow record so the worst offenders of
                // the window survive; ties fall back to oldest-first.
                let min = slow
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.total_ns)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                slow.remove(min);
            }
            slow.push_back(Arc::clone(&rec));
        }
        rec
    }

    /// The most recent `n` records, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<RequestRecord>> {
        let mut all: Vec<Arc<RequestRecord>> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().expect("flight ring poisoned").iter().cloned());
        }
        all.sort_by_key(|r| std::cmp::Reverse(r.id));
        all.truncate(n);
        all
    }

    /// The slow-ring contents, worst (highest `total_ns`) first.
    pub fn slow_records(&self) -> Vec<Arc<RequestRecord>> {
        let mut all: Vec<Arc<RequestRecord>> =
            self.slow.lock().expect("slow ring poisoned").iter().cloned().collect();
        all.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        all
    }

    /// Look up a record by id, searching the slow ring first (slow records
    /// outlive the recent ring's churn).
    pub fn get(&self, id: u64) -> Option<Arc<RequestRecord>> {
        if let Some(r) = self.slow.lock().expect("slow ring poisoned").iter().find(|r| r.id == id) {
            return Some(Arc::clone(r));
        }
        let shard = (id as usize) % SHARDS;
        self.shards[shard]
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .find(|r| r.id == id)
            .map(Arc::clone)
    }

    /// JSON body of `/debug/requests`: the `n` most recent records.
    pub fn requests_json(&self, n: usize) -> String {
        let recs = self.recent(n);
        let mut out = String::from("{\"requests\":[\n");
        for (i, r) in recs.iter().enumerate() {
            out.push_str(&r.to_json());
            if i + 1 < recs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let _ = writeln!(out, "],\"capacity\":{}}}", self.capacity);
        out
    }

    /// JSON body of `/debug/slow`: threshold in effect plus the slow ring,
    /// worst first.
    pub fn slow_json(&self) -> String {
        let recs = self.slow_records();
        let mut out = String::from("{");
        match self.slow_threshold_ns() {
            Some(t) => {
                let _ = write!(out, "\"threshold_ns\":{t}");
            }
            None => out.push_str("\"threshold_ns\":null"),
        }
        let _ = writeln!(
            out,
            ",\"self_tuned\":{},\"samples\":{},\"slow\":[",
            self.slow_threshold.is_none(),
            self.latency.count()
        );
        for (i, r) in recs.iter().enumerate() {
            out.push_str(&r.to_json());
            if i + 1 < recs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Chrome trace-event JSON for the retained span buffer of request
    /// `id`, loadable in Perfetto; `None` when the id is not (or no longer)
    /// captured.
    pub fn trace_json(&self, id: u64) -> Option<String> {
        let rec = self.get(id)?;
        Some(trace::chrome_trace(&rec.events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, total_ns: u64) -> RequestRecord {
        let mut r = RequestRecord::new(id, "t0");
        r.total_ns = total_ns;
        r.phase_ns[Phase::Execute.index()] = total_ns;
        r
    }

    #[test]
    fn ring_bounded_and_newest_first() {
        let fr = FlightRecorder::new(SHARDS * 2, Some(Duration::from_secs(3600)));
        for _ in 0..100 {
            let id = fr.next_id();
            fr.record(rec(id, 1000));
        }
        let recent = fr.recent(usize::MAX);
        assert!(recent.len() <= SHARDS * 2);
        assert_eq!(recent[0].id, 100);
        assert!(recent.windows(2).all(|w| w[0].id > w[1].id));
        // Nothing crossed the (absurd) explicit threshold.
        assert!(fr.slow_records().is_empty());
    }

    #[test]
    fn explicit_threshold_marks_slow_and_retains_worst() {
        let fr = FlightRecorder::new(64, Some(Duration::from_millis(10)));
        for i in 0..(SLOW_RING_CAP as u64 + 10) {
            let id = fr.next_id();
            // Every request is slow; total grows with id.
            fr.record(rec(id, 20_000_000 + i * 1_000_000));
        }
        let slow = fr.slow_records();
        assert_eq!(slow.len(), SLOW_RING_CAP);
        // Worst first, and the fastest ones were evicted.
        assert!(slow.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
        assert_eq!(slow[0].total_ns, 20_000_000 + (SLOW_RING_CAP as u64 + 9) * 1_000_000);
    }

    #[test]
    fn self_tuning_threshold_needs_samples() {
        let fr = FlightRecorder::new(64, None);
        assert_eq!(fr.slow_threshold_ns(), None);
        for _ in 0..SELF_TUNE_MIN_SAMPLES {
            let id = fr.next_id();
            fr.record(rec(id, 1_000));
        }
        let t = fr.slow_threshold_ns().expect("threshold self-tunes after warmup");
        // An order-of-magnitude outlier is now flagged.
        let id = fr.next_id();
        let r = fr.record(rec(id, t * 10 + 1));
        assert!(r.slow);
        assert!(fr.get(id).unwrap().slow);
        assert_eq!(fr.slow_records()[0].id, id);
    }

    #[test]
    fn get_finds_slow_records_after_recent_churn() {
        let fr = FlightRecorder::new(SHARDS, Some(Duration::from_millis(1)));
        let slow_id = fr.next_id();
        fr.record(rec(slow_id, 5_000_000));
        // Churn the recent ring far past capacity with fast requests.
        for _ in 0..100 {
            let id = fr.next_id();
            fr.record(rec(id, 10));
        }
        assert!(fr.recent(usize::MAX).iter().all(|r| r.id != slow_id));
        assert_eq!(fr.get(slow_id).expect("slow ring retains it").id, slow_id);
    }

    #[test]
    fn json_renders_and_parses() {
        let fr = FlightRecorder::new(16, Some(Duration::from_millis(1)));
        let id = fr.next_id();
        let mut r = rec(id, 7_000_000);
        r.plan_key = "abc/main:r2c2".into();
        r.cache_hit = true;
        r.error = Some("boom \"quoted\"".into());
        fr.record(r);
        let parsed = crate::json::parse(&fr.requests_json(8)).expect("valid json");
        let reqs = parsed.get("requests").and_then(|j| j.as_arr()).unwrap();
        assert_eq!(reqs.len(), 1);
        let r0 = &reqs[0];
        assert_eq!(r0.get("id").and_then(|j| j.as_f64()), Some(id as f64));
        assert_eq!(r0.get("plan_key").and_then(|j| j.as_str()), Some("abc/main:r2c2"));
        assert!(r0.get("phases").and_then(|j| j.get("execute")).is_some());
        let slow = crate::json::parse(&fr.slow_json()).expect("valid json");
        assert_eq!(slow.get("threshold_ns").and_then(|j| j.as_f64()), Some(1_000_000.0));
        assert_eq!(slow.get("slow").and_then(|j| j.as_arr()).map(<[_]>::len), Some(1));
    }
}
