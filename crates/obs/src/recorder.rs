//! The pluggable event sink instrumented components write through.

use crate::registry::StatsRegistry;
use crate::stats::elapsed_ns;
use std::time::Instant;

/// An event sink for instrumentation points.
///
/// Components that cannot (or should not) hold registry handles — because
/// observability is optional for them — store a `Box<dyn Recorder>` instead,
/// defaulting to [`NoopRecorder`]. Every method has a no-op default, so a
/// sink implements only what it cares about.
///
/// Hot paths should cache [`is_enabled`](Recorder::is_enabled) at attach
/// time: with the default recorder the entire instrumentation cost is then
/// one branch on a local boolean.
pub trait Recorder: Send + Sync {
    /// True when events are actually persisted; instrumented code may skip
    /// measurement work (clock reads, nnz counts) entirely when false.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Add `delta` to the counter at `site`.
    fn add(&self, site: &str, delta: u64) {
        let _ = (site, delta);
    }

    /// Record one event of `nanos` nanoseconds at `site`.
    fn record_duration_ns(&self, site: &str, nanos: u64) {
        let _ = (site, nanos);
    }

    /// Set the gauge at `site` (peak is tracked by the sink).
    fn gauge_set(&self, site: &str, value: u64) {
        let _ = (site, value);
    }

    /// Record one sample into the latency histogram at `site`.
    fn record_histogram(&self, site: &str, value: u64) {
        let _ = (site, value);
    }
}

/// The default sink: discards everything and reports itself disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl Recorder for StatsRegistry {
    fn is_enabled(&self) -> bool {
        true
    }

    fn add(&self, site: &str, delta: u64) {
        self.counter(site).add(delta);
    }

    fn record_duration_ns(&self, site: &str, nanos: u64) {
        self.duration(site).record_ns(nanos);
    }

    fn gauge_set(&self, site: &str, value: u64) {
        self.gauge(site).set(value);
    }

    fn record_histogram(&self, site: &str, value: u64) {
        self.histogram(site).record(value);
    }
}

// A shared sink records like the sink itself: components take a
// `Box<dyn Recorder>`, and `Box<Arc<StatsRegistry>>` lets the caller keep
// reading the registry the component writes to.
impl<R: Recorder + ?Sized> Recorder for std::sync::Arc<R> {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    fn add(&self, site: &str, delta: u64) {
        (**self).add(site, delta);
    }

    fn record_duration_ns(&self, site: &str, nanos: u64) {
        (**self).record_duration_ns(site, nanos);
    }

    fn gauge_set(&self, site: &str, value: u64) {
        (**self).gauge_set(site, value);
    }

    fn record_histogram(&self, site: &str, value: u64) {
        (**self).record_histogram(site, value);
    }
}

/// Time `f` and record the elapsed wall time at `site` — but only measure at
/// all when the recorder is enabled.
pub fn timed<T>(rec: &dyn Recorder, site: &str, f: impl FnOnce() -> T) -> T {
    if !rec.is_enabled() {
        return f();
    }
    let t0 = Instant::now();
    let v = f();
    rec.record_duration_ns(site, elapsed_ns(t0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_discards_everything() {
        let r = NoopRecorder;
        assert!(!r.is_enabled());
        r.add("x", 1);
        r.record_duration_ns("x", 10);
        r.gauge_set("x", 5);
    }

    #[test]
    fn registry_implements_recorder() {
        let reg = StatsRegistry::new();
        let rec: &dyn Recorder = &reg;
        assert!(rec.is_enabled());
        rec.add("c", 2);
        rec.gauge_set("g", 7);
        rec.record_duration_ns("d", 100);
        let rep = reg.report();
        assert_eq!(rep.counter("c"), Some(2));
        assert_eq!(rep.gauge("g"), Some((7, 7)));
        assert_eq!(rep.duration("d").unwrap().total_ns, 100);
    }

    #[test]
    fn timed_records_only_when_enabled() {
        let reg = StatsRegistry::new();
        let v = timed(&reg, "work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(reg.report().duration("work").unwrap().count, 1);
        let v = timed(&NoopRecorder, "work", || 1);
        assert_eq!(v, 1);
    }
}
