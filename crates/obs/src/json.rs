//! A minimal JSON codec for the machine-readable exporters and the tests
//! that schema-check their output. Not a general-purpose library: it parses
//! the subset the exporters emit (objects, arrays, strings with standard
//! escapes, f64 numbers, booleans, null) with no streaming and no
//! serde-style derive.

use std::fmt::Write as _;

/// Escape a string for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value at `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The key/value pairs when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(kv) => Some(kv),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|()| Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let raw = "a\"b\\c\nd\te\u{1}";
        let parsed = parse(&format!("\"{}\"", escape_json(raw))).unwrap();
        assert_eq!(parsed.as_str(), Some(raw));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":"x","d":true,"e":null},"f":false}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
        assert_eq!(v.get("f"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "[1] extra", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse(" [ { } ] ").unwrap().as_arr().unwrap().len(), 1);
    }
}
