//! Persistent per-kernel throughput profiles: the observe half of the
//! observe→calibrate→re-cost loop.
//!
//! Every profiled execution produces `(op, kernel family, flops, ns)`
//! samples. This module folds them into per-`(op, kernel, size-class)`
//! throughput statistics — GFLOP/s with Welford mean/variance, size classes
//! as log₂ buckets of the flop count so a 2048³ gemm and a 64³ gemm
//! calibrate independently — and persists them to a versioned, checksummed
//! file under `DMML_PROFILE_DIR`. Saves merge with whatever is already on
//! disk, so profiles accumulate across runs and processes; loads validate
//! the version header and checksum and fail loudly (never panic), letting
//! consumers degrade to their static cost model.
//!
//! ```
//! use dm_obs::profile::ProfileStore;
//!
//! let mut store = ProfileStore::new();
//! // 2e9 flops in ~1e9 ns = ~2 GFLOP/s, three samples in one size class.
//! store.record("matmul", "parallel", 2_000_000_000, 1_000_000_000);
//! store.record("matmul", "parallel", 2_000_000_000, 1_100_000_000);
//! store.record("matmul", "parallel", 2_000_000_000, 900_000_000);
//! let g = store.gflops("matmul", "parallel", 2_000_000_000).unwrap();
//! assert!((g - 2.0).abs() < 0.3);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Environment variable naming the directory kernel profiles persist to.
pub const PROFILE_DIR_ENV: &str = "DMML_PROFILE_DIR";

/// File name of the profile store inside the profile directory. The `v1`
/// suffix matches [`FORMAT_VERSION`]; a future incompatible format bumps
/// both, so old and new binaries never fight over one file.
pub const PROFILE_FILE: &str = "kernel_profiles.v1.tsv";

/// Version tag written in the file header and required on load.
pub const FORMAT_VERSION: u32 = 1;

/// Minimum samples in a size class before consumers should trust its
/// calibrated throughput over a static estimate.
pub const MIN_SAMPLES: u64 = 3;

/// The directory named by [`PROFILE_DIR_ENV`], if set and non-empty.
pub fn env_profile_dir() -> Option<PathBuf> {
    match std::env::var(PROFILE_DIR_ENV) {
        Ok(d) if !d.trim().is_empty() => Some(PathBuf::from(d)),
        _ => None,
    }
}

/// Log₂ size class of a flop count: samples bucket by order of magnitude, so
/// throughput at cache-resident sizes never averages with throughput at
/// memory-bound sizes. Class 0 covers 0–1 flops, class `k` covers
/// `[2^k, 2^(k+1))`.
pub fn size_class(flops: u64) -> u32 {
    63 - flops.max(1).leading_zeros()
}

/// Welford online mean/variance accumulator, mergeable across runs via the
/// Chan et al. parallel update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Fold another accumulator in (exact same result as pushing its samples).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.count += other.count;
    }

    /// Samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 below two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Key of one profile entry: operator mnemonic, kernel family, flop size
/// class.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProfileKey {
    /// Operator mnemonic (`"matmul"`, `"crossprod"`, `"ewise +"`).
    pub op: String,
    /// Kernel family that executed it (`"dense"`, `"parallel"`, `"fused"`,
    /// `"sparse"`, `"blocked"`).
    pub kernel: String,
    /// [`size_class`] of the flop count.
    pub size_class: u32,
}

/// Why a profile file failed to load. Every variant is a recoverable
/// condition: consumers fall back to their static cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// Filesystem error reading or writing the store.
    Io(String),
    /// The file ends before the checksum-covered body it declares.
    Truncated,
    /// The body hash does not match the header checksum.
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the actual body.
        found: u64,
    },
    /// The file was written by an incompatible format version.
    VersionSkew {
        /// Version found in the header.
        found: String,
    },
    /// A body line does not parse.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "profile store I/O error: {e}"),
            ProfileError::Truncated => write!(f, "profile store truncated"),
            ProfileError::ChecksumMismatch { expected, found } => write!(
                f,
                "profile store checksum mismatch (header {expected:#018x}, body {found:#018x})"
            ),
            ProfileError::VersionSkew { found } => {
                write!(f, "profile store version skew (found {found:?}, want v{FORMAT_VERSION})")
            }
            ProfileError::Malformed { line } => {
                write!(f, "profile store malformed at line {line}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// FNV-1a over the body bytes: dependency-free and plenty for detecting the
/// torn writes and hand edits the checksum guards against (not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Accumulated throughput profiles per `(op, kernel, size class)`.
///
/// Throughput is stored in GFLOP/s (`flops / ns` — the units cancel to
/// exactly that). [`record`](Self::record) folds a sample, [`merge`](Self::merge)
/// combines stores, [`save`](Self::save) merges with the on-disk state so
/// concurrent histories accumulate instead of overwriting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileStore {
    entries: BTreeMap<ProfileKey, Welford>,
}

impl ProfileStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of `(op, kernel, size class)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Fold in one observed execution: `flops` of work in `ns` wall time.
    /// Zero-flop and zero-time samples are ignored — they carry no
    /// throughput information.
    pub fn record(&mut self, op: &str, kernel: &str, flops: u64, ns: u64) {
        if flops == 0 || ns == 0 {
            return;
        }
        let key = ProfileKey {
            op: op.to_owned(),
            kernel: kernel.to_owned(),
            size_class: size_class(flops),
        };
        self.entries.entry(key).or_default().push(flops as f64 / ns as f64);
    }

    /// Fold every entry of `other` into `self`.
    pub fn merge(&mut self, other: &ProfileStore) {
        for (k, w) in &other.entries {
            self.entries.entry(k.clone()).or_default().merge(w);
        }
    }

    /// Iterate entries in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&ProfileKey, &Welford)> {
        self.entries.iter()
    }

    /// The raw accumulator for an exact `(op, kernel, size class)`.
    pub fn entry(&self, op: &str, kernel: &str, class: u32) -> Option<&Welford> {
        // Borrowed lookup without allocating a key: BTreeMap requires an
        // owned ProfileKey for `get`, so scan is avoided via a range over an
        // ad-hoc key. Profiles are small (dozens of entries); a clone-free
        // exact get is still worth the construction of one key.
        self.entries.get(&ProfileKey {
            op: op.to_owned(),
            kernel: kernel.to_owned(),
            size_class: class,
        })
    }

    /// Calibrated throughput in GFLOP/s for running `op` on `kernel` at
    /// `flops` of work, or `None` when fewer than [`MIN_SAMPLES`] samples
    /// exist. The exact size class is preferred; with no trustworthy entry
    /// there, the nearest class within ±2 octaves answers instead — close
    /// enough that throughput is comparable, far enough to bridge
    /// measurement gaps.
    pub fn gflops(&self, op: &str, kernel: &str, flops: u64) -> Option<f64> {
        let want = size_class(flops);
        let mut best: Option<(u32, f64)> = None;
        for (k, w) in &self.entries {
            if k.op != op || k.kernel != kernel || w.count < MIN_SAMPLES {
                continue;
            }
            let dist = k.size_class.abs_diff(want);
            if dist > 2 {
                continue;
            }
            if best.is_none_or(|(bd, _)| dist < bd) {
                best = Some((dist, w.mean()));
            }
        }
        best.map(|(_, g)| g)
    }

    /// Serialize to the on-disk text format: a version header, an FNV-1a
    /// checksum line covering the body, then one tab-separated line per
    /// entry.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        for (k, w) in &self.entries {
            let _ = writeln!(
                body,
                "{}\t{}\t{}\t{}\t{:.17e}\t{:.17e}",
                k.op, k.kernel, k.size_class, w.count, w.mean, w.m2
            );
        }
        let mut out = format!("DMML-PROFILE v{FORMAT_VERSION}\n");
        let _ = writeln!(out, "checksum {:016x}", fnv1a(body.as_bytes()));
        out.push_str(&body);
        out.into_bytes()
    }

    /// Parse the on-disk format, validating version and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProfileError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ProfileError::Truncated)?;
        let mut lines = text.split_inclusive('\n');
        let header = lines.next().ok_or(ProfileError::Truncated)?;
        // A header without its newline was cut mid-write.
        if !header.ends_with('\n') {
            return Err(ProfileError::Truncated);
        }
        let header = header.trim_end();
        match header.strip_prefix("DMML-PROFILE ") {
            Some(v) if v == format!("v{FORMAT_VERSION}") => {}
            Some(v) => return Err(ProfileError::VersionSkew { found: v.to_owned() }),
            None => return Err(ProfileError::VersionSkew { found: header.to_owned() }),
        }
        let checksum_line = lines.next().ok_or(ProfileError::Truncated)?;
        if !checksum_line.ends_with('\n') {
            return Err(ProfileError::Truncated);
        }
        let expected = checksum_line
            .trim_end()
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or(ProfileError::Truncated)?;
        let body: String = lines.collect();
        // A body that does not end in a newline lost its tail mid-write.
        if !body.is_empty() && !body.ends_with('\n') {
            return Err(ProfileError::Truncated);
        }
        let found = fnv1a(body.as_bytes());
        if found != expected {
            return Err(ProfileError::ChecksumMismatch { expected, found });
        }
        let mut entries = BTreeMap::new();
        for (i, line) in body.lines().enumerate() {
            let mut parts = line.split('\t');
            let malformed = || ProfileError::Malformed { line: i + 3 };
            let op = parts.next().ok_or_else(malformed)?.to_owned();
            let kernel = parts.next().ok_or_else(malformed)?.to_owned();
            let class: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(malformed)?;
            let count: u64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(malformed)?;
            let mean: f64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(malformed)?;
            let m2: f64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(malformed)?;
            if parts.next().is_some() || !mean.is_finite() || !m2.is_finite() {
                return Err(malformed());
            }
            entries
                .insert(ProfileKey { op, kernel, size_class: class }, Welford { count, mean, m2 });
        }
        Ok(ProfileStore { entries })
    }

    /// Load the store from `dir`. A missing file loads as an empty store
    /// (first run); any other failure — truncation, checksum mismatch,
    /// version skew — is an error the caller should log and degrade from.
    pub fn load(dir: &Path) -> Result<Self, ProfileError> {
        let path = dir.join(PROFILE_FILE);
        match std::fs::read(&path) {
            Ok(bytes) => Self::from_bytes(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(ProfileError::Io(format!("{}: {e}", path.display()))),
        }
    }

    /// Persist to `dir`, merging with the store already there so profiles
    /// accumulate across runs. An unreadable (corrupt) existing file is
    /// replaced by this store's contents rather than poisoning the save.
    /// The write goes through a temp file + rename, so a crash mid-save
    /// leaves the previous file intact.
    pub fn save(&self, dir: &Path) -> Result<(), ProfileError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ProfileError::Io(format!("{}: {e}", dir.display())))?;
        let mut merged = match Self::load(dir) {
            Ok(existing) => existing,
            Err(_) => Self::new(), // corrupt on-disk state: start over
        };
        merged.merge(self);
        let path = dir.join(PROFILE_FILE);
        let tmp = dir.join(format!("{PROFILE_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, merged.to_bytes())
            .map_err(|e| ProfileError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| ProfileError::Io(format!("{}: {e}", path.display())))
    }
}

impl fmt::Display for ProfileStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(empty kernel profile)");
        }
        writeln!(f, "kernel profiles (op, kernel, 2^class flops: GFLOP/s ± sd over n):")?;
        for (k, w) in &self.entries {
            writeln!(
                f,
                "  {:<12} {:<9} 2^{:<3} {:>8.3} ± {:.3} over {}",
                k.op,
                k.kernel,
                k.size_class,
                w.mean(),
                w.stddev(),
                w.count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("dmml_profile_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn size_classes_are_log2_buckets() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 1);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(2047), 10);
        assert_eq!(size_class(2048), 11);
        assert_eq!(size_class(u64::MAX), 63);
    }

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        // Merge of two halves equals the whole.
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..2] {
            a.push(x);
        }
        for &x in &xs[2..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), w.count());
        assert!((a.mean() - w.mean()).abs() < 1e-12);
        assert!((a.variance() - w.variance()).abs() < 1e-12);
        // Empty is a merge identity on both sides.
        let mut e = Welford::new();
        e.merge(&a);
        assert!((e.mean() - a.mean()).abs() < 1e-12);
        a.merge(&Welford::new());
        assert!((e.mean() - a.mean()).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut s = ProfileStore::new();
        s.record("matmul", "dense", 1 << 20, 1_000_000);
        s.record("matmul", "dense", 1 << 20, 1_100_000);
        s.record("ewise +", "parallel", 1 << 24, 9_000_000);
        let back = ProfileStore::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn save_merges_across_runs() {
        let dir = tempdir("merge");
        let mut run1 = ProfileStore::new();
        run1.record("matmul", "dense", 1 << 20, 1_000_000);
        run1.save(&dir).unwrap();
        let mut run2 = ProfileStore::new();
        run2.record("matmul", "dense", 1 << 20, 1_000_000);
        run2.record("matmul", "dense", 1 << 20, 1_000_000);
        run2.save(&dir).unwrap();
        let merged = ProfileStore::load(&dir).unwrap();
        let w = merged.entry("matmul", "dense", size_class(1 << 20)).unwrap();
        assert_eq!(w.count(), 3, "1 from run1 + 2 from run2");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gflops_enforces_min_samples_and_nearby_classes() {
        let mut s = ProfileStore::new();
        // Two samples: below MIN_SAMPLES, not trusted.
        s.record("matmul", "dense", 1 << 20, 1_000_000);
        s.record("matmul", "dense", 1 << 20, 1_000_000);
        assert_eq!(s.gflops("matmul", "dense", 1 << 20), None);
        s.record("matmul", "dense", 1 << 20, 1_000_000);
        let g = s.gflops("matmul", "dense", 1 << 20).unwrap();
        assert!((g - (1u64 << 20) as f64 / 1_000_000.0).abs() < 1e-9);
        // A neighboring size class (+1 octave) answers; a far one does not.
        assert!(s.gflops("matmul", "dense", 1 << 21).is_some());
        assert!(s.gflops("matmul", "dense", 1 << 30).is_none());
        // Other ops/kernels never answer.
        assert_eq!(s.gflops("crossprod", "dense", 1 << 20), None);
        assert_eq!(s.gflops("matmul", "parallel", 1 << 20), None);
    }

    #[test]
    fn load_of_missing_dir_is_empty_not_error() {
        let dir = std::env::temp_dir().join("dmml_profile_test_never_created");
        assert!(ProfileStore::load(&dir).unwrap().is_empty());
    }

    #[test]
    fn truncated_file_is_detected() {
        let mut s = ProfileStore::new();
        for _ in 0..4 {
            s.record("matmul", "dense", 1 << 20, 1_000_000);
        }
        let bytes = s.to_bytes();
        // Chop mid-body: the final line loses its newline.
        let cut = &bytes[..bytes.len() - 10];
        assert!(matches!(
            ProfileStore::from_bytes(cut),
            Err(ProfileError::Truncated | ProfileError::ChecksumMismatch { .. })
        ));
        // Chop inside the header.
        assert_eq!(ProfileStore::from_bytes(&bytes[..5]), Err(ProfileError::Truncated));
        // Empty file.
        assert_eq!(ProfileStore::from_bytes(b""), Err(ProfileError::Truncated));
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let mut s = ProfileStore::new();
        s.record("matmul", "dense", 1 << 20, 1_000_000);
        let mut bytes = s.to_bytes();
        // Flip a digit in the body (the count field).
        let pos = bytes.len() - 20;
        bytes[pos] = if bytes[pos] == b'1' { b'2' } else { b'1' };
        assert!(matches!(
            ProfileStore::from_bytes(&bytes),
            Err(ProfileError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_skew_is_detected() {
        let mut s = ProfileStore::new();
        s.record("matmul", "dense", 1 << 20, 1_000_000);
        let text = String::from_utf8(s.to_bytes()).unwrap();
        let skewed = text.replace("DMML-PROFILE v1", "DMML-PROFILE v999");
        match ProfileStore::from_bytes(skewed.as_bytes()) {
            Err(ProfileError::VersionSkew { found }) => assert_eq!(found, "v999"),
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn save_over_corrupt_file_recovers() {
        let dir = tempdir("corrupt");
        std::fs::write(dir.join(PROFILE_FILE), b"garbage").unwrap();
        assert!(ProfileStore::load(&dir).is_err());
        let mut s = ProfileStore::new();
        s.record("matmul", "dense", 1 << 20, 1_000_000);
        s.save(&dir).unwrap();
        assert_eq!(ProfileStore::load(&dir).unwrap(), s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn display_renders_entries() {
        let mut s = ProfileStore::new();
        assert!(s.to_string().contains("empty"));
        s.record("matmul", "parallel", 1 << 30, 500_000_000);
        let txt = s.to_string();
        assert!(txt.contains("matmul"), "{txt}");
        assert!(txt.contains("parallel"), "{txt}");
    }
}
