//! Log-linear latency histograms: fixed-size atomic bucket arrays with
//! bounded relative error, snapshotted for p50/p95/p99 reporting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave. 16 sub-buckets bound the
/// relative quantile error at 1/16 ≈ 6.25% of the true value.
const SUB: u64 = 16;
/// Values below `SUB` get one exact bucket each.
const EXACT: usize = SUB as usize;
/// Octaves covered above the exact region: values 16 .. 2^63.
const OCTAVES: usize = 60;
/// Total bucket count.
const BUCKETS: usize = EXACT + OCTAVES * SUB as usize;

/// Map a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // Octave o = floor(log2 v) >= 4; within-octave position uses the next
    // 4 bits below the leading bit.
    let o = 63 - v.leading_zeros() as usize;
    let within = ((v >> (o - 4)) - SUB) as usize;
    (EXACT + (o - 4) * SUB as usize + within).min(BUCKETS - 1)
}

/// Lower bound of the value range covered by bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let rel = idx - EXACT;
    let o = rel / SUB as usize + 4;
    let within = (rel % SUB as usize) as u64;
    (SUB + within) << (o - 4)
}

/// Width of the value range covered by bucket `idx` (1 in the exact region).
fn bucket_width(idx: usize) -> u64 {
    if idx < EXACT {
        1
    } else {
        1u64 << ((idx - EXACT) / SUB as usize)
    }
}

/// A concurrent log-linear histogram of `u64` samples (typically latency in
/// nanoseconds).
///
/// Values below 16 get exact unit buckets; above that, each power-of-two
/// octave is split into 16 linear sub-buckets, so reported quantiles are
/// within 6.25% of the true sample value at any magnitude. Recording is a
/// handful of relaxed atomic increments — safe to leave enabled on hot
/// paths — and the whole structure is a fixed ~8 KiB, independent of sample
/// count.
///
/// ```
/// use dm_obs::LogHistogram;
///
/// let h = LogHistogram::new();
/// for v in [100u64, 200, 300, 400, 1000] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 5);
/// // p50 lands on the middle sample, within the 6.25% bucket error.
/// let p50 = s.quantile(0.5);
/// assert!((p50 as f64 - 300.0).abs() <= 300.0 / 16.0 + 1.0);
/// ```
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy, storing only occupied buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }

    /// Fold every sample of `other` into `self` (bucket-wise addition).
    ///
    /// Merging is commutative and associative up to snapshot equality, and
    /// the zero-sample histogram is its identity — the algebra cross-run
    /// profile accumulation relies on: per-run histograms can be combined in
    /// any order and the quantiles come out the same.
    pub fn merge(&self, other: &LogHistogram) {
        for (i, b) in other.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        let count = other.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        // An empty `other` holds min = u64::MAX; guarded by the early return.
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset to empty (between profiled runs).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Clone for LogHistogram {
    fn clone(&self) -> Self {
        let out = LogHistogram::new();
        for (i, b) in self.buckets.iter().enumerate() {
            out.buckets[i].store(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out.count.store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        out.sum.store(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        out.min.store(self.min.load(Ordering::Relaxed), Ordering::Relaxed);
        out.max.store(self.max.load(Ordering::Relaxed), Ordering::Relaxed);
        out
    }
}

/// A point-in-time copy of a [`LogHistogram`]: totals plus the occupied
/// `(bucket_index, count)` pairs, in index order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Occupied buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated from the bucket midpoints,
    /// clamped into `[min, max]` so the bucket error never reports a value
    /// outside the observed range. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= target {
                let idx = idx as usize;
                let mid = bucket_lower(idx) + bucket_width(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1_000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index monotone at {v}");
            assert!(idx < BUCKETS);
            // The bucket's range actually contains the value (except the
            // final clamp bucket).
            if idx < BUCKETS - 1 {
                assert!(bucket_lower(idx) <= v, "{v}");
                assert!(v < bucket_lower(idx) + bucket_width(idx), "{v}");
            }
            last = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 15);
        assert_eq!(s.buckets.len(), 16);
    }

    #[test]
    fn quantiles_match_exact_reference_within_bucket_error() {
        // 1..=10_000: exact percentiles are known in closed form.
        let h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        for (q, exact) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = s.quantile(q) as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 1.0 / 16.0, "q{q}: got {got}, exact {exact}, rel {rel}");
        }
        assert_eq!(s.quantile(0.0), s.min);
        let p100 = s.quantile(1.0) as f64;
        assert!((p100 - 10_000.0).abs() / 10_000.0 <= 1.0 / 16.0, "p100 {p100}");
    }

    #[test]
    fn heavy_tail_p99_lands_in_the_tail() {
        // 98 fast samples at ~1us, 2 slow at 1ms: the rank-99 sample is in
        // the tail, so p99 must land there while p50 stays near the fast
        // cluster.
        let h = LogHistogram::new();
        for _ in 0..98 {
            h.record(1_000);
        }
        h.record(1_000_000);
        h.record(1_000_000);
        let s = h.snapshot();
        assert!(s.p50() >= 937 && s.p50() <= 1_063, "p50 {}", s.p50());
        assert!(s.p99() >= 937_500, "p99 {}", s.p99());
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn empty_and_reset() {
        let h = LogHistogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50()), (0, 0, 0, 0));
        h.record(500);
        assert_eq!(h.count(), 1);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn clone_copies_buckets() {
        let h = LogHistogram::new();
        h.record(123);
        h.record(456);
        let c = h.clone();
        assert_eq!(c.snapshot(), h.snapshot());
        c.record(789);
        assert_ne!(c.snapshot(), h.snapshot());
    }

    #[test]
    fn merge_is_associative_and_commutative_on_snapshots() {
        let samples: [&[u64]; 3] = [&[1, 20, 300], &[4_000, 50_000], &[7, 7, 7, 600_000]];
        let fill = |vals: &[u64]| {
            let h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = fill(samples[0]);
        left.merge(&fill(samples[1]));
        left.merge(&fill(samples[2]));
        // a ⊕ (b ⊕ c)
        let bc = fill(samples[1]);
        bc.merge(&fill(samples[2]));
        let right = fill(samples[0]);
        right.merge(&bc);
        assert_eq!(left.snapshot(), right.snapshot());
        // c ⊕ b ⊕ a (commuted)
        let rev = fill(samples[2]);
        rev.merge(&fill(samples[1]));
        rev.merge(&fill(samples[0]));
        assert_eq!(left.snapshot(), rev.snapshot());
        // The merged result equals recording everything into one histogram.
        let all = fill(&samples.concat());
        assert_eq!(left.snapshot(), all.snapshot());
    }

    #[test]
    fn zero_sample_histogram_is_the_merge_identity() {
        let h = LogHistogram::new();
        h.record(42);
        h.record(1_000);
        let before = h.snapshot();
        h.merge(&LogHistogram::new()); // rhs identity
        assert_eq!(h.snapshot(), before);
        let empty = LogHistogram::new();
        empty.merge(&h); // lhs identity
        assert_eq!(empty.snapshot(), before);
        // min/max/quantiles survive: the empty side's min sentinel (u64::MAX)
        // must not leak through the merge.
        let s = empty.snapshot();
        assert_eq!((s.min, s.max), (42, 1_000));
        assert!(s.p50() >= 42 && s.p99() <= 1_000);
        // Merging two empties stays exactly empty (p50 of no samples is 0).
        let a = LogHistogram::new();
        a.merge(&LogHistogram::new());
        let s = a.snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50()), (0, 0, 0, 0));
    }

    #[test]
    fn mean_and_sum() {
        let h = LogHistogram::new();
        h.record(10);
        h.record(30);
        let s = h.snapshot();
        assert_eq!(s.sum, 40);
        assert_eq!(s.mean(), 20);
    }
}
