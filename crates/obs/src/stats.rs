//! The metric primitives: atomic counters, high-water-mark gauges, and
//! histogram-free duration accumulators with RAII timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing atomic counter.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization primitives, and no reader infers cross-thread ordering
/// from them.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (between experiment phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge tracking the latest value and its all-time peak (high-water mark).
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current value, raising the peak if exceeded.
    pub fn set(&self, value: u64) {
        self.current.store(value, Ordering::Relaxed);
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Latest value set.
    pub fn get(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset both current and peak to zero.
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// A histogram-free duration accumulator: count, total, min, and max in four
/// atomics. Mean is derived at snapshot time. Deliberately no buckets — the
/// overhead budget for always-on instrumentation is a handful of relaxed
/// atomic ops per event.
#[derive(Debug)]
pub struct DurationStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for DurationStat {
    fn default() -> Self {
        DurationStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl DurationStat {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event of `nanos` nanoseconds.
    pub fn record_ns(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(nanos, Ordering::Relaxed);
        self.min_ns.fetch_min(nanos, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of the accumulator. (Each field
    /// is read independently; concurrent writers can skew mean vs. min/max
    /// by a partial event, which is acceptable for statistics.)
    pub fn snapshot(&self) -> DurationSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let total_ns = self.total_ns.load(Ordering::Relaxed);
        let min = self.min_ns.load(Ordering::Relaxed);
        DurationSnapshot {
            count,
            total_ns,
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// Reset to empty.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`DurationStat`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationSnapshot {
    /// Events recorded.
    pub count: u64,
    /// Sum of all event durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest event (0 when empty).
    pub min_ns: u64,
    /// Longest event.
    pub max_ns: u64,
}

impl DurationSnapshot {
    /// Mean event duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// RAII timer: measures from construction and records into a
/// [`DurationStat`] on drop (or explicitly via [`Timer::stop`]).
#[derive(Debug)]
pub struct Timer<'a> {
    target: Option<&'a DurationStat>,
    start: Instant,
}

impl<'a> Timer<'a> {
    /// Start timing into `stat`.
    pub fn start(stat: &'a DurationStat) -> Self {
        Timer { target: Some(stat), start: Instant::now() }
    }

    /// A timer that records nowhere — lets call sites keep one code path
    /// whether or not profiling is on.
    pub fn disabled() -> Timer<'static> {
        Timer { target: None, start: Instant::now() }
    }

    /// Stop now, record, and return the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        let elapsed = elapsed_ns(self.start);
        if let Some(t) = self.target.take() {
            t.record_ns(elapsed);
        }
        elapsed
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.target.take() {
            t.record_ns(elapsed_ns(self.start));
        }
    }
}

/// Nanoseconds since `start`, saturating at `u64::MAX` (584 years).
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Render nanoseconds human-readably (`412 ns`, `3.21 us`, `1.05 ms`, `2.3 s`).
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = Gauge::new();
        g.set(10);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.peak(), 10);
        g.reset();
        assert_eq!((g.get(), g.peak()), (0, 0));
    }

    #[test]
    fn duration_stat_min_max_mean() {
        let d = DurationStat::new();
        assert_eq!(d.snapshot(), DurationSnapshot::default());
        d.record_ns(10);
        d.record_ns(30);
        let s = d.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn timer_records_on_drop_and_stop() {
        let d = DurationStat::new();
        {
            let _t = Timer::start(&d);
        }
        let t = Timer::start(&d);
        let ns = t.stop();
        let s = d.snapshot();
        assert_eq!(s.count, 2);
        assert!(s.total_ns >= ns);
        // Disabled timers never record.
        let _ = Timer::disabled();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(412), "412 ns");
        assert_eq!(fmt_ns(3_210), "3.21 us");
        assert_eq!(fmt_ns(1_050_000), "1.05 ms");
        assert_eq!(fmt_ns(2_300_000_000), "2.30 s");
    }
}
