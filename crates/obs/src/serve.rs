//! Stdlib-only metrics scrape endpoint.
//!
//! [`MetricsServer`] binds a `std::net::TcpListener` and serves the live
//! contents of a [`StatsRegistry`] from a background
//! thread:
//!
//! - `GET /metrics` — Prometheus text exposition
//!   ([`prometheus_text`])
//! - `GET /stats.json` — JSON report ([`stats_json`])
//! - `GET /healthz` — readiness probe (plain `ok`)
//!
//! Enable it from the environment with `DMML_METRICS_ADDR=host:port`
//! (port `0` picks a free port; the bound address is available via
//! [`MetricsServer::addr`]). Shutdown is graceful: dropping the server (or
//! calling [`shutdown`](MetricsServer::shutdown)) stops the accept loop and
//! joins the thread.
//!
//! ```
//! use std::sync::Arc;
//! use dm_obs::{Recorder, StatsRegistry};
//! use dm_obs::serve::MetricsServer;
//!
//! let reg = Arc::new(StatsRegistry::new());
//! reg.add("demo.requests", 1);
//! let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&reg)).unwrap();
//! let body: String = {
//!     use std::io::{Read, Write};
//!     let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
//!     write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
//!     let mut buf = String::new();
//!     s.read_to_string(&mut buf).unwrap();
//!     buf
//! };
//! assert!(body.contains("dmml_demo_requests"));
//! server.shutdown();
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::{prometheus_text, stats_json};
use crate::flightrec::FlightRecorder;
use crate::registry::StatsRegistry;

/// Environment variable that, when set to `host:port`, enables the scrape
/// endpoint in env-aware binaries (the examples check it via
/// [`MetricsServer::from_env`]).
pub const METRICS_ADDR_ENV: &str = "DMML_METRICS_ADDR";

/// Content-Type Prometheus scrapers expect for the text exposition format.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A background HTTP server exposing one registry's live stats.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `registry` from a background thread.
    pub fn start<A: ToSocketAddrs>(addr: A, registry: Arc<StatsRegistry>) -> std::io::Result<Self> {
        Self::start_with_flight(addr, registry, None)
    }

    /// Like [`start`](MetricsServer::start), additionally mounting a
    /// [`FlightRecorder`] under the `/debug/*` endpoints (`/debug/requests`,
    /// `/debug/slow`, `/debug/trace?id=`). Without a recorder those paths
    /// answer 404.
    pub fn start_with_flight<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<StatsRegistry>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dmml-metrics".to_owned())
            .spawn(move || accept_loop(listener, registry, flight, stop2))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// Start a server on the address named by [`METRICS_ADDR_ENV`].
    /// `None` when the variable is unset or empty; `Some(Err(..))` when it
    /// is set but the bind fails — callers decide whether that is fatal.
    pub fn from_env(registry: Arc<StatsRegistry>) -> Option<std::io::Result<Self>> {
        Self::from_env_with_flight(registry, None)
    }

    /// [`from_env`](MetricsServer::from_env) with a [`FlightRecorder`]
    /// mounted under `/debug/*`.
    pub fn from_env_with_flight(
        registry: Arc<StatsRegistry>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Option<std::io::Result<Self>> {
        match std::env::var(METRICS_ADDR_ENV) {
            Ok(a) if !a.trim().is_empty() => {
                Some(Self::start_with_flight(a.trim(), registry, flight))
            }
            _ => None,
        }
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and join the thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; a throwaway self-connection unblocks it so
        // the loop observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<StatsRegistry>,
    flight: Option<Arc<FlightRecorder>>,
    stop: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // A stalled client must not wedge the scrape endpoint.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_conn(stream, &registry, flight.as_deref());
    }
}

/// Value of query parameter `key` in `query` (`a=1&b=2` form, no decoding).
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').filter_map(|kv| kv.split_once('=')).find(|(k, _)| *k == key).map(|(_, v)| v)
}

/// Answer the `/debug/*` family from the mounted flight recorder.
fn debug_response(
    route: &str,
    query: &str,
    flight: Option<&FlightRecorder>,
) -> (&'static str, &'static str, String) {
    let Some(fr) = flight else {
        return (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "no flight recorder mounted\n".to_owned(),
        );
    };
    match route {
        "/debug/requests" => {
            let n = query_param(query, "n").and_then(|v| v.parse::<usize>().ok()).unwrap_or(32);
            ("200 OK", "application/json", fr.requests_json(n))
        }
        "/debug/slow" => ("200 OK", "application/json", fr.slow_json()),
        "/debug/trace" => {
            let id = query_param(query, "id").and_then(|v| v.parse::<u64>().ok());
            match id.and_then(|id| fr.trace_json(id)) {
                Some(body) => ("200 OK", "application/json", body),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "unknown or evicted request id; try /debug/trace?id=<id> with an id from /debug/requests\n"
                        .to_owned(),
                ),
            }
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /debug/requests, /debug/slow or /debug/trace?id=<id>\n".to_owned(),
        ),
    }
}

fn handle_conn(
    mut stream: TcpStream,
    registry: &StatsRegistry,
    flight: Option<&FlightRecorder>,
) -> std::io::Result<()> {
    let path = read_request_path(&mut stream)?;
    let path = path.as_deref().unwrap_or("");
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path, ""),
    };
    let (status, content_type, body) = match route {
        "/metrics" | "/" => {
            ("200 OK", PROMETHEUS_CONTENT_TYPE, prometheus_text(&registry.report()))
        }
        "/stats.json" => ("200 OK", "application/json", stats_json(&registry.report())),
        // Readiness probe: answering at all means the accept loop is up.
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        r if r.starts_with("/debug/") => debug_response(r, query, flight),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /stats.json, /healthz or /debug/requests\n".to_owned(),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request head and return the request path of a
/// GET line, or `None` for anything unparseable (answered with 404).
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_owned())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_json_then_shuts_down() {
        let reg = Arc::new(StatsRegistry::new());
        reg.add("serve.test.hits", 7);
        reg.record_histogram("serve.test.lat_ns", 1000);
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = server.addr();

        let metrics = fetch(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("dmml_serve_test_hits 7"), "{metrics}");
        assert!(metrics.contains("quantile=\"0.5\""), "{metrics}");

        let json = fetch(addr, "/stats.json");
        assert!(json.starts_with("HTTP/1.1 200 OK"), "{json}");
        assert!(json.contains("application/json"), "{json}");
        let body = json.split("\r\n\r\n").nth(1).unwrap();
        let parsed = crate::json::parse(body).expect("valid json");
        assert!(format!("{parsed:?}").contains("serve.test.hits"));

        let missing = fetch(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
        // The port is released: connecting now fails (or is refused fast).
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
            "listener should be closed after shutdown"
        );
    }

    #[test]
    fn reflects_live_registry_updates() {
        let reg = Arc::new(StatsRegistry::new());
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let before = fetch(server.addr(), "/metrics");
        assert!(!before.contains("dmml_live_counter"), "{before}");
        reg.add("live.counter", 42);
        let after = fetch(server.addr(), "/metrics");
        assert!(after.contains("dmml_live_counter 42"), "{after}");
        server.shutdown();
    }

    #[test]
    fn debug_endpoints_serve_flight_recorder() {
        use crate::flightrec::{FlightRecorder, Phase, RequestRecord};

        let reg = Arc::new(StatsRegistry::new());
        let fr = Arc::new(FlightRecorder::new(16, Some(Duration::from_millis(1))));
        let id = fr.next_id();
        let mut rec = RequestRecord::new(id, "tenant-a");
        rec.total_ns = 5_000_000; // over the 1 ms bar → slow
        rec.phase_ns[Phase::Execute.index()] = 5_000_000;
        fr.record(rec);
        let server =
            MetricsServer::start_with_flight("127.0.0.1:0", reg, Some(Arc::clone(&fr))).unwrap();
        let addr = server.addr();

        let reqs = fetch(addr, "/debug/requests?n=4");
        assert!(reqs.starts_with("HTTP/1.1 200 OK"), "{reqs}");
        assert!(reqs.contains("application/json"), "{reqs}");
        let body = reqs.split("\r\n\r\n").nth(1).unwrap();
        let parsed = crate::json::parse(body).expect("valid json");
        let arr = parsed.get("requests").and_then(|j| j.as_arr()).unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("tenant").and_then(|j| j.as_str()), Some("tenant-a"));

        let slow = fetch(addr, "/debug/slow");
        assert!(slow.starts_with("HTTP/1.1 200 OK"), "{slow}");
        let body = slow.split("\r\n\r\n").nth(1).unwrap();
        let parsed = crate::json::parse(body).expect("valid json");
        assert_eq!(parsed.get("slow").and_then(|j| j.as_arr()).map(<[_]>::len), Some(1));

        // Captured id renders a (possibly empty) Chrome trace; unknown 404s.
        let trace = fetch(addr, &format!("/debug/trace?id={id}"));
        assert!(trace.starts_with("HTTP/1.1 200 OK"), "{trace}");
        assert!(trace.contains("traceEvents"), "{trace}");
        let missing = fetch(addr, "/debug/trace?id=999999");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let bad = fetch(addr, "/debug/nope");
        assert!(bad.starts_with("HTTP/1.1 404"), "{bad}");
        server.shutdown();
    }

    #[test]
    fn debug_endpoints_404_without_recorder() {
        let reg = Arc::new(StatsRegistry::new());
        let server = MetricsServer::start("127.0.0.1:0", reg).unwrap();
        let resp = fetch(server.addr(), "/debug/requests");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn from_env_is_none_when_unset() {
        // Serial with other env tests via the process-global var name choice:
        // this test only asserts the unset path and does not set the var.
        std::env::remove_var(METRICS_ADDR_ENV);
        let reg = Arc::new(StatsRegistry::new());
        assert!(MetricsServer::from_env(reg).is_none());
    }
}
