//! # dm-obs
//!
//! The workspace-wide observability layer, modeled on the introspection
//! machinery of the surveyed declarative ML systems (`explain` plans,
//! `-stats` runtime reports, and fine-grained lineage tracing): a
//! dependency-free stats registry of atomic counters, high-water-mark
//! gauges, duration accumulators, and log-linear latency histograms
//! ([`LogHistogram`], p50/p95/p99 with ≤6.25% relative error), plus a
//! pluggable [`Recorder`] trait whose no-op default makes instrumented hot
//! paths cost (nearly) nothing when observability is disabled.
//!
//! The [`trace`] module adds structured tracing on top: RAII [`trace::Span`]s
//! with trace/span/parent ids collected into sharded process-global buffers,
//! explicit [`trace::SpanHandle`] propagation for cross-thread nesting, and
//! a Chrome trace-event JSON exporter ([`trace::chrome_trace`]) loadable in
//! Perfetto. [`export`] renders any [`StatsReport`] as Prometheus text or
//! JSON ([`export::prometheus_text`], [`export::stats_json`]); [`serve`]
//! exposes both over a stdlib-only HTTP scrape endpoint
//! ([`serve::MetricsServer`], `DMML_METRICS_ADDR`). The [`profile`] module
//! closes the observe→calibrate loop: a versioned, checksummed on-disk
//! store ([`profile::ProfileStore`], `DMML_PROFILE_DIR`) of per-(op, kernel,
//! size-class) throughput profiles that downstream cost models divide flop
//! counts by.
//!
//! Instrumented components come in two flavors:
//!
//! * **Handle-based** — a call site asks the [`StatsRegistry`] once for a
//!   labeled [`Counter`] / [`Gauge`] / [`DurationStat`] handle and then
//!   updates it with single atomic operations, no map lookup on the hot path.
//! * **Recorder-based** — a component stores a `Box<dyn Recorder>` (default
//!   [`NoopRecorder`]) and emits events through it; pass a
//!   [`StatsRegistry`]-backed recorder to collect them. Components should
//!   cache [`Recorder::is_enabled`] so the disabled path is one boolean test.
//!
//! ```
//! use dm_obs::{StatsRegistry, Timer};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(StatsRegistry::new());
//! let hits = reg.counter("pool.hit");
//! hits.add(3);
//! let wall = reg.duration("exec.eval");
//! {
//!     let _t = Timer::start(&wall);
//!     // ... timed work ...
//! }
//! let report = reg.report();
//! assert_eq!(report.counter("pool.hit"), Some(3));
//! assert!(report.duration("exec.eval").is_some());
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod flightrec;
pub mod histogram;
pub mod json;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod serve;
pub mod stats;
pub mod trace;

pub use flightrec::{FlightRecorder, Phase, RequestRecord};
pub use histogram::{HistogramSnapshot, LogHistogram};
pub use profile::{ProfileError, ProfileStore};
pub use recorder::{timed, NoopRecorder, Recorder};
pub use registry::{StatsRegistry, StatsReport};
pub use serve::MetricsServer;
pub use stats::{elapsed_ns, fmt_ns, Counter, DurationSnapshot, DurationStat, Gauge, Timer};
