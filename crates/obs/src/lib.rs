//! # dm-obs
//!
//! The workspace-wide observability layer, modeled on the introspection
//! machinery of the surveyed declarative ML systems (`explain` plans and
//! `-stats` runtime reports): a dependency-free stats registry of atomic
//! counters, high-water-mark gauges, and histogram-free duration
//! accumulators, plus a pluggable [`Recorder`] trait whose no-op default
//! makes instrumented hot paths cost (nearly) nothing when observability is
//! disabled.
//!
//! Instrumented components come in two flavors:
//!
//! * **Handle-based** — a call site asks the [`StatsRegistry`] once for a
//!   labeled [`Counter`] / [`Gauge`] / [`DurationStat`] handle and then
//!   updates it with single atomic operations, no map lookup on the hot path.
//! * **Recorder-based** — a component stores a `Box<dyn Recorder>` (default
//!   [`NoopRecorder`]) and emits events through it; pass a
//!   [`StatsRegistry`]-backed recorder to collect them. Components should
//!   cache [`Recorder::is_enabled`] so the disabled path is one boolean test.
//!
//! ```
//! use dm_obs::{StatsRegistry, Timer};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(StatsRegistry::new());
//! let hits = reg.counter("pool.hit");
//! hits.add(3);
//! let wall = reg.duration("exec.eval");
//! {
//!     let _t = Timer::start(&wall);
//!     // ... timed work ...
//! }
//! let report = reg.report();
//! assert_eq!(report.counter("pool.hit"), Some(3));
//! assert!(report.duration("exec.eval").is_some());
//! ```

pub mod recorder;
pub mod registry;
pub mod stats;

pub use recorder::{timed, NoopRecorder, Recorder};
pub use registry::{StatsRegistry, StatsReport};
pub use stats::{elapsed_ns, fmt_ns, Counter, DurationSnapshot, DurationStat, Gauge, Timer};
