//! Integration tests for the stats layer: atomicity of concurrent updates
//! and the zero-footprint guarantee of the no-op recorder.

use dm_obs::{NoopRecorder, Recorder, StatsRegistry};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Concurrent increments never lose updates: the final counter value is
    /// exactly the sum of what every thread added, regardless of how the
    /// work is sliced across threads.
    #[test]
    fn concurrent_counter_increments_sum_exactly(
        threads in 1usize..8,
        per_thread in 1u64..200,
        step in 1u64..5,
    ) {
        let reg = Arc::new(StatsRegistry::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = reg.counter("t.concurrent");
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.add(step);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(
            reg.report().counter("t.concurrent"),
            Some(threads as u64 * per_thread * step)
        );
    }

    /// Gauge peak under concurrency is the true maximum of all set values.
    #[test]
    fn concurrent_gauge_peak_is_global_max(values in proptest::collection::vec(0u64..10_000, 1..40)) {
        let reg = Arc::new(StatsRegistry::new());
        let handles: Vec<_> = values
            .iter()
            .map(|&v| {
                let g = reg.gauge("t.peak");
                std::thread::spawn(move || g.set(v))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (_, peak) = reg.report().gauge("t.peak").unwrap();
        prop_assert_eq!(peak, values.iter().copied().max().unwrap());
    }
}

#[test]
fn noop_recorder_leaves_registry_reports_empty() {
    // Instrumenting through the no-op recorder must not create any sites:
    // a registry in the same process stays completely empty.
    let reg = StatsRegistry::new();
    let rec = NoopRecorder;
    assert!(!rec.is_enabled());
    rec.add("x.counter", 5);
    rec.gauge_set("x.gauge", 7);
    rec.record_duration_ns("x.wall", 1_000);
    let report = reg.report();
    assert_eq!(report.counter("x.counter"), None);
    assert_eq!(report.gauge("x.gauge"), None);
    assert!(report.duration("x.wall").is_none());
    assert_eq!(report.to_string(), StatsRegistry::new().report().to_string());
}

#[test]
fn registry_backed_recorder_round_trips_through_arc() {
    // The blanket Arc<R: Recorder> impl lets components own a boxed recorder
    // while the caller keeps the registry for reading.
    let reg = Arc::new(StatsRegistry::new());
    let boxed: Box<dyn Recorder> = Box::new(Arc::clone(&reg));
    assert!(boxed.is_enabled());
    boxed.add("arc.counter", 2);
    boxed.record_duration_ns("arc.wall", 500);
    assert_eq!(reg.report().counter("arc.counter"), Some(2));
    assert_eq!(reg.report().duration("arc.wall").unwrap().count, 1);
}
