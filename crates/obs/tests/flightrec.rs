//! Concurrency property test for the flight recorder: many writer threads
//! deposit records while a reader snapshots continuously. The recent ring
//! must never exceed its capacity, snapshots must never tear (every record
//! a reader observes is exactly what some writer deposited), and the JSON
//! views must parse at every instant.

use dm_obs::flightrec::{FlightRecorder, Phase, RequestRecord, SLOW_RING_CAP};
use dm_obs::json;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Build a record whose every field is a fixed function of its id — the
/// writer-side invariant a torn snapshot would violate.
fn make_record(fr: &FlightRecorder) -> RequestRecord {
    let id = fr.next_id();
    let mut rec = RequestRecord::new(id, &format!("tenant-{}", id % 5));
    for p in Phase::ALL {
        rec.phase_ns[p.index()] = (id + 1) * (p.index() as u64 + 1);
    }
    rec.total_ns = rec.phase_sum_ns();
    rec.plan_key = format!("plan-{id}");
    rec
}

/// Check the [`make_record`] invariant on a record observed by a reader.
fn assert_untorn(rec: &RequestRecord) {
    for p in Phase::ALL {
        assert_eq!(
            rec.phase_ns[p.index()],
            (rec.id + 1) * (p.index() as u64 + 1),
            "torn phase slot {} on record {}",
            p.name(),
            rec.id
        );
    }
    assert_eq!(rec.total_ns, rec.phase_sum_ns(), "torn total on record {}", rec.id);
    assert_eq!(rec.plan_key, format!("plan-{}", rec.id), "torn plan key on record {}", rec.id);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N writers race `per_writer` records each against a continuously
    /// snapshotting reader. A zero slow threshold marks every record slow,
    /// so the slow ring's eviction path races too.
    #[test]
    fn concurrent_writers_never_tear_or_overflow(
        writers in 2usize..6,
        per_writer in 10usize..60,
        capacity in 8usize..64,
    ) {
        let fr = FlightRecorder::new(capacity, Some(Duration::ZERO));
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut rounds = 0u32;
                while !done.load(Ordering::Acquire) {
                    let snap = fr.recent(usize::MAX);
                    assert!(
                        snap.len() <= fr.capacity(),
                        "recent ring exceeded capacity: {} > {}",
                        snap.len(),
                        fr.capacity()
                    );
                    for pair in snap.windows(2) {
                        assert!(pair[0].id > pair[1].id, "recent() not newest-first");
                    }
                    for rec in &snap {
                        assert_untorn(rec);
                    }
                    let slow = fr.slow_records();
                    assert!(slow.len() <= SLOW_RING_CAP, "slow ring exceeded its cap");
                    for pair in slow.windows(2) {
                        assert!(pair[0].total_ns >= pair[1].total_ns, "slow() not worst-first");
                    }
                    for rec in &slow {
                        assert_untorn(rec);
                    }
                    json::parse(&fr.requests_json(16)).expect("requests_json parses mid-churn");
                    json::parse(&fr.slow_json()).expect("slow_json parses mid-churn");
                    rounds += 1;
                }
                rounds
            });
            let handles: Vec<_> = (0..writers)
                .map(|_| {
                    s.spawn(|| {
                        for _ in 0..per_writer {
                            let rec = make_record(&fr);
                            let stored = fr.record(rec);
                            assert_untorn(&stored);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("writer panicked");
            }
            done.store(true, Ordering::Release);
            let rounds = reader.join().expect("reader panicked");
            assert!(rounds > 0, "reader never got a snapshot in");
        });

        // Quiescent state: everything that survived churn is intact, the
        // ring is bounded, and the newest id is still reachable.
        let total = (writers * per_writer) as u64;
        let snap = fr.recent(usize::MAX);
        prop_assert!(!snap.is_empty());
        prop_assert!(snap.len() <= fr.capacity());
        prop_assert_eq!(snap[0].id, total, "newest record survives");
        let found = fr.get(total).expect("newest record retrievable by id");
        assert_untorn(&found);
    }
}
