//! Integration tests for the structured tracer: span collection under
//! concurrency and the well-formedness of the Chrome trace export.
//!
//! The trace buffers are process-global, so every test here serializes
//! through one static lock and clears the buffers before asserting.

use dm_obs::json;
use dm_obs::trace::{self, EventKind, Span, TraceEvent};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Spawn `threads` workers, each opening `depth` nested spans under an
/// explicitly propagated root handle, and return the drained events.
fn run_concurrent_spans(threads: usize, depth: usize) -> (trace::SpanHandle, Vec<TraceEvent>) {
    trace::set_enabled(true);
    trace::clear();
    let root = Span::enter("root", "test");
    let root_h = root.handle().expect("tracing enabled");
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut task = Span::child_of(Some(root_h), "task", "test");
                task.arg("worker", t.to_string());
                for d in 0..depth {
                    let _inner = Span::enter(format!("level{d}"), "test");
                }
            });
        }
    });
    drop(root);
    trace::set_enabled(false);
    (root_h, trace::take_events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Spans emitted from N concurrent threads serialize into one buffer
    /// with valid parent links (every non-root parent id is a collected
    /// span of the same trace) and coherent timing.
    #[test]
    fn concurrent_spans_serialize_with_valid_links(
        threads in 1usize..6,
        depth in 0usize..4,
    ) {
        let _guard = lock();
        let (root_h, events) = run_concurrent_spans(threads, depth);
        let ours: Vec<&TraceEvent> =
            events.iter().filter(|e| e.trace == root_h.trace).collect();
        // One root + per thread: one task + `depth` nested levels.
        prop_assert_eq!(ours.len(), 1 + threads * (1 + depth));

        let span_ids: std::collections::HashSet<u64> =
            ours.iter().map(|e| e.span).collect();
        prop_assert_eq!(span_ids.len(), ours.len(), "span ids unique");
        for e in &ours {
            // Parent links resolve within the trace; only the root is
            // parentless.
            if e.span == root_h.span {
                prop_assert_eq!(e.parent, 0, "root has no parent");
            } else {
                prop_assert!(span_ids.contains(&e.parent), "parent collected");
            }
            // Durations are non-negative by construction (u64) and the
            // open/close sequence numbers are ordered.
            match e.kind {
                EventKind::Span { seq_open, seq_close, .. } => {
                    prop_assert!(seq_open < seq_close);
                }
                EventKind::Instant { .. } => prop_assert!(false, "no instants emitted"),
            }
        }
        // Every task span links directly to the cross-thread root handle.
        let tasks = ours.iter().filter(|e| e.name == "task").count();
        let linked = ours
            .iter()
            .filter(|e| e.name == "task" && e.parent == root_h.span)
            .count();
        prop_assert_eq!(tasks, threads);
        prop_assert_eq!(linked, threads);
    }
}

/// Walk a Chrome trace JSON document: every `ph` is B/E/X/i, and per tid the
/// B/E events form a strictly nested (balanced, never-negative) bracket
/// sequence.
fn assert_chrome_trace_well_formed(doc: &str) {
    let v = json::parse(doc).expect("chrome trace parses as JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    let mut depth: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph present");
        assert!(matches!(ph, "B" | "E" | "X" | "i"), "unexpected phase {ph:?} in {doc}");
        let tid = ev.get("tid").and_then(|t| t.as_f64()).expect("tid present") as i64;
        assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some(), "numeric ts");
        match ph {
            "B" => {
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap().to_owned();
                depth.entry(tid).or_default().push(name);
            }
            "E" => {
                let open = depth.entry(tid).or_default().pop();
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap();
                assert_eq!(open.as_deref(), Some(name), "E matches innermost open B");
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(|s| s.as_str()), Some("t"), "instant scope");
            }
            _ => {}
        }
    }
    for (tid, open) in depth {
        assert!(open.is_empty(), "unclosed spans on tid {tid}: {open:?}");
    }
}

#[test]
fn chrome_export_is_well_formed_and_strictly_nested() {
    let _guard = lock();
    trace::set_enabled(true);
    trace::clear();
    {
        let outer = Span::enter("outer", "test");
        let outer_h = outer.handle();
        {
            let mut mid = Span::enter("mid", "test");
            mid.arg("k", "v with \"quotes\" and \\ backslash");
            trace::instant("tick", &[("n", "1".into())]);
            let _leaf = Span::enter("leaf", "test");
        }
        // A cross-thread child closes after sibling spans opened later on
        // the main thread — per-tid nesting must still hold.
        std::thread::scope(|s| {
            s.spawn(move || {
                let _task = Span::child_of(outer_h, "task", "test");
            });
        });
    }
    trace::set_enabled(false);
    let events = trace::take_events();
    let doc = trace::chrome_trace(&events);
    assert_chrome_trace_well_formed(&doc);
    // Golden structural facts: 4 spans -> 4 B + 4 E, one instant.
    let v = json::parse(&doc).unwrap();
    let arr = v.get("traceEvents").unwrap().as_arr().unwrap();
    let count =
        |ph: &str| arr.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph)).count();
    assert_eq!(count("B"), 4, "{doc}");
    assert_eq!(count("E"), 4, "{doc}");
    assert_eq!(count("i"), 1, "{doc}");
    // Args carry the ids and the escaped user value round-trips.
    let mid = arr
        .iter()
        .find(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("mid")
                && e.get("ph").and_then(|p| p.as_str()) == Some("B")
        })
        .expect("mid begin event");
    let args = mid.get("args").unwrap();
    assert!(args.get("trace").and_then(|t| t.as_f64()).is_some());
    assert_eq!(args.get("k").and_then(|k| k.as_str()), Some("v with \"quotes\" and \\ backslash"));
}

#[test]
fn export_of_concurrent_run_stays_nested_per_thread() {
    let _guard = lock();
    let (_, events) = run_concurrent_spans(4, 3);
    assert_chrome_trace_well_formed(&trace::chrome_trace(&events));
}
