//! Matrix-free generalized-linear-model training.
//!
//! The trainer only needs two linear maps: `mv(w) = X·w` and `tmv(r) = Xᵀ·r`.
//! Callers supply them as closures, so the same optimizer runs over a dense
//! matrix, a CSR matrix, a compressed matrix, or a factorized join — the
//! data-representation pluggability the surveyed systems are built around.

use crate::MlError;
use dm_matrix::ops;

/// Link/loss family of the GLM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Squared loss, identity link (linear regression).
    Gaussian,
    /// Log loss, logistic link (binary classification with labels in {0,1}).
    Binomial,
}

impl Family {
    /// Mean function applied to the linear predictor.
    #[inline]
    pub fn mean(&self, eta: f64) -> f64 {
        match self {
            Family::Gaussian => eta,
            Family::Binomial => sigmoid(eta),
        }
    }
}

/// Numerically-stable logistic function.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperparameters for batch gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct GdConfig {
    /// Step size.
    pub learning_rate: f64,
    /// Maximum epochs.
    pub max_iter: usize,
    /// Stop when the gradient 2-norm (divided by n) falls below this.
    pub tol: f64,
    /// L2 regularization strength (not applied to an intercept — the caller
    /// owns intercept handling by appending a ones column and setting
    /// `skip_reg_first`).
    pub l2: f64,
    /// Exclude coefficient 0 from regularization (the intercept convention).
    pub skip_reg_first: bool,
}

impl Default for GdConfig {
    fn default() -> Self {
        GdConfig { learning_rate: 0.1, max_iter: 2000, tol: 1e-8, l2: 0.0, skip_reg_first: false }
    }
}

/// Result of a GLM fit.
#[derive(Debug, Clone)]
pub struct GlmFit {
    /// Learned coefficients.
    pub weights: Vec<f64>,
    /// Epochs actually run.
    pub iterations: usize,
    /// Final scaled gradient norm.
    pub grad_norm: f64,
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
}

/// Train a GLM by full-batch gradient descent using only `mv`/`tmv` closures.
///
/// The gradient of the (mean) loss is `Xᵀ(μ(Xw) − y) / n + λ·w`, identical in
/// form for Gaussian and Binomial families — which is what lets factorized
/// and compressed representations slot in transparently.
///
/// # Errors
/// [`MlError::Shape`] when `y` is empty or `mv` returns the wrong length.
pub fn train_gd(
    mv: impl Fn(&[f64]) -> Vec<f64>,
    tmv: impl Fn(&[f64]) -> Vec<f64>,
    y: &[f64],
    num_features: usize,
    family: Family,
    cfg: &GdConfig,
) -> Result<GlmFit, MlError> {
    let n = y.len();
    if n == 0 || num_features == 0 {
        return Err(MlError::Shape("empty training data".into()));
    }
    let mut w = vec![0.0; num_features];
    let mut iterations = 0;
    let mut grad_norm = f64::INFINITY;
    for it in 0..cfg.max_iter {
        iterations = it + 1;
        let eta = mv(&w);
        if eta.len() != n {
            return Err(MlError::Shape(format!("mv returned {} values for {n} rows", eta.len())));
        }
        // Residual in mean space.
        let resid: Vec<f64> = eta.iter().zip(y).map(|(&e, &yi)| family.mean(e) - yi).collect();
        let mut grad = tmv(&resid);
        if grad.len() != num_features {
            return Err(MlError::Shape(format!(
                "tmv returned {} values for {num_features} features",
                grad.len()
            )));
        }
        let inv_n = 1.0 / n as f64;
        for (j, g) in grad.iter_mut().enumerate() {
            *g *= inv_n;
            if cfg.l2 > 0.0 && !(cfg.skip_reg_first && j == 0) {
                *g += cfg.l2 * w[j];
            }
        }
        grad_norm = ops::norm2(&grad);
        if grad_norm <= cfg.tol {
            return Ok(GlmFit { weights: w, iterations, grad_norm, converged: true });
        }
        ops::axpy(-cfg.learning_rate, &grad, &mut w);
    }
    Ok(GlmFit { weights: w, iterations, grad_norm, converged: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_matrix::Dense;

    fn xy_linear() -> (Dense, Vec<f64>) {
        // y = 1 + 2*x with x in 0..8 (intercept column prepended).
        let x = Dense::from_fn(8, 2, |r, c| if c == 0 { 1.0 } else { r as f64 });
        let y = (0..8).map(|r| 1.0 + 2.0 * r as f64).collect();
        (x, y)
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gaussian_gd_recovers_exact_line() {
        let (x, y) = xy_linear();
        let cfg =
            GdConfig { learning_rate: 0.02, max_iter: 50_000, tol: 1e-10, ..GdConfig::default() };
        let fit =
            train_gd(|w| ops::gemv(&x, w), |r| ops::tmv(&x, r), &y, 2, Family::Gaussian, &cfg)
                .unwrap();
        assert!(fit.converged, "grad norm {}", fit.grad_norm);
        assert!((fit.weights[0] - 1.0).abs() < 1e-3, "{:?}", fit.weights);
        assert!((fit.weights[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn binomial_gd_separates_classes() {
        // Feature x: class 1 when x > 0.
        let x = Dense::from_fn(20, 1, |r, _| r as f64 - 9.5);
        let y: Vec<f64> = (0..20).map(|r| if r as f64 - 9.5 > 0.0 { 1.0 } else { 0.0 }).collect();
        let cfg = GdConfig { learning_rate: 0.5, max_iter: 5000, tol: 1e-4, ..GdConfig::default() };
        let fit =
            train_gd(|w| ops::gemv(&x, w), |r| ops::tmv(&x, r), &y, 1, Family::Binomial, &cfg)
                .unwrap();
        assert!(fit.weights[0] > 0.5, "positive slope expected: {:?}", fit.weights);
        // Training accuracy 100% on separable data.
        let preds = ops::gemv(&x, &fit.weights);
        let correct =
            preds.iter().zip(&y).filter(|(&p, &yi)| (sigmoid(p) > 0.5) == (yi > 0.5)).count();
        assert_eq!(correct, 20);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = xy_linear();
        let base =
            GdConfig { learning_rate: 0.02, max_iter: 20_000, tol: 1e-12, ..GdConfig::default() };
        let strong = GdConfig { l2: 5.0, ..base };
        let w0 =
            train_gd(|w| ops::gemv(&x, w), |r| ops::tmv(&x, r), &y, 2, Family::Gaussian, &base)
                .unwrap()
                .weights;
        let w1 =
            train_gd(|w| ops::gemv(&x, w), |r| ops::tmv(&x, r), &y, 2, Family::Gaussian, &strong)
                .unwrap()
                .weights;
        assert!(ops::norm2(&w1) < ops::norm2(&w0));
    }

    #[test]
    fn skip_reg_first_spares_intercept() {
        let (x, y) = xy_linear();
        let cfg = GdConfig {
            learning_rate: 0.02,
            max_iter: 30_000,
            tol: 1e-12,
            l2: 1.0,
            skip_reg_first: true,
        };
        let w = train_gd(|w| ops::gemv(&x, w), |r| ops::tmv(&x, r), &y, 2, Family::Gaussian, &cfg)
            .unwrap()
            .weights;
        let cfg_all = GdConfig { skip_reg_first: false, ..cfg };
        let w_all =
            train_gd(|w| ops::gemv(&x, w), |r| ops::tmv(&x, r), &y, 2, Family::Gaussian, &cfg_all)
                .unwrap()
                .weights;
        assert!(w[0].abs() > w_all[0].abs(), "unregularized intercept should stay larger");
    }

    #[test]
    fn shape_errors() {
        let err = train_gd(
            |_| vec![0.0; 3],
            |_| vec![0.0; 1],
            &[],
            1,
            Family::Gaussian,
            &GdConfig::default(),
        );
        assert!(matches!(err, Err(MlError::Shape(_))));
        let err = train_gd(
            |_| vec![0.0; 99],
            |_| vec![0.0; 1],
            &[1.0, 2.0],
            1,
            Family::Gaussian,
            &GdConfig::default(),
        );
        assert!(matches!(err, Err(MlError::Shape(_))));
    }

    #[test]
    fn non_convergence_reported_not_error() {
        let (x, y) = xy_linear();
        let cfg = GdConfig { learning_rate: 1e-6, max_iter: 3, tol: 1e-12, ..GdConfig::default() };
        let fit =
            train_gd(|w| ops::gemv(&x, w), |r| ops::tmv(&x, r), &y, 2, Family::Gaussian, &cfg)
                .unwrap();
        assert!(!fit.converged);
        assert_eq!(fit.iterations, 3);
    }
}
