#![allow(clippy::needless_range_loop)] // index loops mirror the math in numeric kernels
//! Gaussian and multinomial naive Bayes classifiers.

use crate::MlError;
use dm_matrix::Dense;

/// Gaussian naive Bayes: per-class feature means and variances.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Distinct class labels, sorted.
    pub classes: Vec<i64>,
    /// Log prior per class.
    pub log_priors: Vec<f64>,
    /// `classes x features` means.
    pub means: Dense,
    /// `classes x features` variances (floored for stability).
    pub variances: Dense,
}

impl GaussianNb {
    /// Fit from features `x` and integer class labels `y`.
    ///
    /// # Errors
    /// [`MlError::Shape`] on length mismatch or empty data;
    /// [`MlError::Degenerate`] when fewer than two classes are present.
    pub fn fit(x: &Dense, y: &[i64]) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        let mut classes: Vec<i64> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() < 2 {
            return Err(MlError::Degenerate("need at least two classes".into()));
        }
        let k = classes.len();
        let d = x.cols();
        let idx_of = |label: i64| classes.binary_search(&label).expect("label seen during dedup");

        let mut counts = vec![0usize; k];
        let mut means = Dense::zeros(k, d);
        for (r, &label) in y.iter().enumerate() {
            let c = idx_of(label);
            counts[c] += 1;
            for (m, &v) in means.row_mut(c).iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for c in 0..k {
            let inv = 1.0 / counts[c] as f64;
            for m in means.row_mut(c) {
                *m *= inv;
            }
        }
        let mut variances = Dense::zeros(k, d);
        for (r, &label) in y.iter().enumerate() {
            let c = idx_of(label);
            let mrow: Vec<f64> = means.row(c).to_vec();
            for ((s, &v), &m) in variances.row_mut(c).iter_mut().zip(x.row(r)).zip(&mrow) {
                *s += (v - m) * (v - m);
            }
        }
        const VAR_FLOOR: f64 = 1e-9;
        for c in 0..k {
            let inv = 1.0 / counts[c] as f64;
            for s in variances.row_mut(c) {
                *s = (*s * inv).max(VAR_FLOOR);
            }
        }
        let n = y.len() as f64;
        let log_priors = counts.iter().map(|&c| (c as f64 / n).ln()).collect();
        Ok(GaussianNb { classes, log_priors, means, variances })
    }

    /// Per-class log joint likelihood for a row.
    pub fn log_joint(&self, row: &[f64]) -> Vec<f64> {
        let k = self.classes.len();
        let mut out = Vec::with_capacity(k);
        for c in 0..k {
            let mut ll = self.log_priors[c];
            for ((&v, &m), &s2) in row.iter().zip(self.means.row(c)).zip(self.variances.row(c)) {
                ll += -0.5 * ((2.0 * std::f64::consts::PI * s2).ln() + (v - m) * (v - m) / s2);
            }
            out.push(ll);
        }
        out
    }

    /// Predicted class for a row.
    pub fn predict_row(&self, row: &[f64]) -> i64 {
        let lj = self.log_joint(row);
        let best = lj
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("log likelihoods are finite"))
            .expect("at least two classes")
            .0;
        self.classes[best]
    }

    /// Predictions for every row of `x`.
    pub fn predict(&self, x: &Dense) -> Vec<i64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Classification accuracy.
    pub fn accuracy(&self, x: &Dense, y: &[i64]) -> f64 {
        let correct = self.predict(x).iter().zip(y).filter(|(p, t)| p == t).count();
        correct as f64 / y.len().max(1) as f64
    }
}

/// Multinomial naive Bayes for count-valued features with Laplace smoothing.
#[derive(Debug, Clone)]
pub struct MultinomialNb {
    /// Distinct class labels, sorted.
    pub classes: Vec<i64>,
    /// Log prior per class.
    pub log_priors: Vec<f64>,
    /// `classes x features` log conditional probabilities.
    pub log_probs: Dense,
}

impl MultinomialNb {
    /// Fit from nonnegative count features and integer labels with smoothing
    /// strength `alpha`.
    ///
    /// # Errors
    /// [`MlError::Shape`] / [`MlError::Degenerate`] as for [`GaussianNb::fit`],
    /// plus [`MlError::BadParam`] for negative features or `alpha <= 0`.
    pub fn fit(x: &Dense, y: &[i64], alpha: f64) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        if alpha <= 0.0 {
            return Err(MlError::BadParam(format!("alpha must be positive, got {alpha}")));
        }
        if x.data().iter().any(|&v| v < 0.0) {
            return Err(MlError::BadParam("multinomial NB requires nonnegative features".into()));
        }
        let mut classes: Vec<i64> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() < 2 {
            return Err(MlError::Degenerate("need at least two classes".into()));
        }
        let k = classes.len();
        let d = x.cols();
        let idx_of = |label: i64| classes.binary_search(&label).expect("label seen during dedup");

        let mut counts = vec![0usize; k];
        let mut feature_sums = Dense::zeros(k, d);
        for (r, &label) in y.iter().enumerate() {
            let c = idx_of(label);
            counts[c] += 1;
            for (s, &v) in feature_sums.row_mut(c).iter_mut().zip(x.row(r)) {
                *s += v;
            }
        }
        let mut log_probs = Dense::zeros(k, d);
        for c in 0..k {
            let total: f64 = feature_sums.row(c).iter().sum::<f64>() + alpha * d as f64;
            for (lp, &s) in log_probs.row_mut(c).iter_mut().zip(feature_sums.row(c)) {
                *lp = ((s + alpha) / total).ln();
            }
        }
        let n = y.len() as f64;
        let log_priors = counts.iter().map(|&c| (c as f64 / n).ln()).collect();
        Ok(MultinomialNb { classes, log_priors, log_probs })
    }

    /// Predicted class for a row of counts.
    pub fn predict_row(&self, row: &[f64]) -> i64 {
        let mut best = (0usize, f64::NEG_INFINITY);
        for c in 0..self.classes.len() {
            let mut ll = self.log_priors[c];
            for (&v, &lp) in row.iter().zip(self.log_probs.row(c)) {
                ll += v * lp;
            }
            if ll > best.1 {
                best = (c, ll);
            }
        }
        self.classes[best.0]
    }

    /// Predictions for every row of `x`.
    pub fn predict(&self, x: &Dense) -> Vec<i64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Classification accuracy.
    pub fn accuracy(&self, x: &Dense, y: &[i64]) -> f64 {
        let correct = self.predict(x).iter().zip(y).filter(|(p, t)| p == t).count();
        correct as f64 / y.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_data() -> (Dense, Vec<i64>) {
        // Class 0 around (0, 0); class 1 around (5, 5); class 2 around (0, 5).
        let x = Dense::from_fn(120, 2, |r, c| {
            let jitter = (((r * 31 + c * 17) % 11) as f64) / 11.0 - 0.5;
            match r % 3 {
                0 => jitter,
                1 => 5.0 + jitter,
                _ => {
                    if c == 0 {
                        jitter
                    } else {
                        5.0 + jitter
                    }
                }
            }
        });
        let y = (0..120).map(|r| (r % 3) as i64).collect();
        (x, y)
    }

    #[test]
    fn gaussian_nb_separates_blobs() {
        let (x, y) = gaussian_data();
        let m = GaussianNb::fit(&x, &y).unwrap();
        assert_eq!(m.classes, vec![0, 1, 2]);
        assert!(m.accuracy(&x, &y) > 0.99);
    }

    #[test]
    fn gaussian_nb_priors_reflect_imbalance() {
        let x = Dense::from_fn(100, 1, |r, _| if r < 90 { 0.0 } else { 10.0 });
        let y: Vec<i64> = (0..100).map(|r| if r < 90 { 0 } else { 1 }).collect();
        let m = GaussianNb::fit(&x, &y).unwrap();
        assert!((m.log_priors[0] - (0.9f64).ln()).abs() < 1e-12);
        assert!((m.log_priors[1] - (0.1f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gaussian_nb_constant_feature_floored() {
        // A zero-variance feature must not produce NaN/inf scores.
        let x = Dense::from_fn(20, 2, |r, c| if c == 0 { 1.0 } else { (r % 2) as f64 * 4.0 });
        let y: Vec<i64> = (0..20).map(|r| (r % 2) as i64).collect();
        let m = GaussianNb::fit(&x, &y).unwrap();
        let lj = m.log_joint(&[1.0, 0.0]);
        assert!(lj.iter().all(|v| v.is_finite()));
        assert_eq!(m.predict_row(&[1.0, 0.0]), 0);
        assert_eq!(m.predict_row(&[1.0, 4.0]), 1);
    }

    #[test]
    fn gaussian_nb_validation() {
        let (x, y) = gaussian_data();
        assert!(matches!(GaussianNb::fit(&x, &y[..5]), Err(MlError::Shape(_))));
        assert!(matches!(GaussianNb::fit(&x, &vec![1; 120]), Err(MlError::Degenerate(_))));
    }

    #[test]
    fn multinomial_nb_word_counts() {
        // Two "topics": topic 0 uses features 0-1, topic 1 uses features 2-3.
        let x = Dense::from_fn(60, 4, |r, c| {
            let topic = r % 2;
            if (topic == 0 && c < 2) || (topic == 1 && c >= 2) {
                (3 + (r + c) % 4) as f64
            } else {
                ((r + c) % 2) as f64 * 0.0
            }
        });
        let y: Vec<i64> = (0..60).map(|r| (r % 2) as i64).collect();
        let m = MultinomialNb::fit(&x, &y, 1.0).unwrap();
        assert!(m.accuracy(&x, &y) > 0.99);
        // Unseen-feature smoothing keeps scores finite.
        assert!(matches!(m.predict_row(&[0.0, 0.0, 0.0, 0.0]), 0 | 1));
    }

    #[test]
    fn multinomial_nb_validation() {
        let x = Dense::from_fn(10, 2, |r, _| (r % 3) as f64);
        let y: Vec<i64> = (0..10).map(|r| (r % 2) as i64).collect();
        assert!(matches!(MultinomialNb::fit(&x, &y, 0.0), Err(MlError::BadParam(_))));
        let neg = Dense::filled(10, 2, -1.0);
        assert!(matches!(MultinomialNb::fit(&neg, &y, 1.0), Err(MlError::BadParam(_))));
    }

    #[test]
    fn multinomial_alpha_smooths_towards_uniform() {
        let x = Dense::from_fn(20, 2, |r, c| if (r % 2) == c { 10.0 } else { 0.0 });
        let y: Vec<i64> = (0..20).map(|r| (r % 2) as i64).collect();
        let sharp = MultinomialNb::fit(&x, &y, 0.01).unwrap();
        let smooth = MultinomialNb::fit(&x, &y, 100.0).unwrap();
        // Heavier smoothing pulls per-class feature distributions together.
        let gap = |m: &MultinomialNb| (m.log_probs.get(0, 0) - m.log_probs.get(0, 1)).abs();
        assert!(gap(&smooth) < gap(&sharp));
    }
}
