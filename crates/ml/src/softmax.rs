#![allow(clippy::needless_range_loop)] // index loops mirror the math in numeric kernels
//! Multinomial (softmax) logistic regression for multi-class problems.

use crate::MlError;
use dm_matrix::{ops, Dense};

/// Hyperparameters for softmax regression.
#[derive(Debug, Clone, Copy)]
pub struct SoftmaxConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Maximum epochs.
    pub max_iter: usize,
    /// Gradient-norm stopping tolerance.
    pub tol: f64,
    /// L2 strength (intercepts exempt).
    pub l2: f64,
}

impl Default for SoftmaxConfig {
    fn default() -> Self {
        SoftmaxConfig { learning_rate: 0.5, max_iter: 2000, tol: 1e-6, l2: 0.0 }
    }
}

/// A fitted softmax-regression model.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    /// Distinct class labels, sorted.
    pub classes: Vec<i64>,
    /// `k x (d+1)` weights; column 0 is the per-class intercept.
    pub weights: Dense,
    /// Epochs run.
    pub iterations: usize,
    /// Whether tolerance was reached.
    pub converged: bool,
}

/// Row-wise softmax with max subtraction for stability.
fn softmax_row(scores: &mut [f64]) {
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - m).exp();
        z += *s;
    }
    for s in scores.iter_mut() {
        *s /= z;
    }
}

impl SoftmaxRegression {
    /// Fit on features `x` and integer class labels `y` (any label values;
    /// at least two distinct classes required).
    ///
    /// # Errors
    /// [`MlError::Shape`] / [`MlError::Degenerate`] mirroring the binary case.
    pub fn fit(x: &Dense, y: &[i64], cfg: &SoftmaxConfig) -> Result<Self, MlError> {
        let n = x.rows();
        if n != y.len() {
            return Err(MlError::Shape(format!("{n} rows vs {} labels", y.len())));
        }
        if n == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        let mut classes: Vec<i64> = y.to_vec();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() < 2 {
            return Err(MlError::Degenerate("need at least two classes".into()));
        }
        let k = classes.len();
        let d = x.cols() + 1; // intercept-augmented
        let class_idx: Vec<usize> =
            y.iter().map(|l| classes.binary_search(l).expect("label seen during dedup")).collect();

        let mut w = Dense::zeros(k, d);
        let mut probs = vec![0.0; k];
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..cfg.max_iter {
            iterations += 1;
            let mut grad = Dense::zeros(k, d);
            for r in 0..n {
                let row = x.row(r);
                for (c, p) in probs.iter_mut().enumerate() {
                    let wrow = w.row(c);
                    *p = wrow[0] + ops::dot(&wrow[1..], row);
                }
                softmax_row(&mut probs);
                for c in 0..k {
                    let delta = probs[c] - f64::from(class_idx[r] == c);
                    let grow = grad.row_mut(c);
                    grow[0] += delta;
                    for (g, &xv) in grow[1..].iter_mut().zip(row) {
                        *g += delta * xv;
                    }
                }
            }
            let inv_n = 1.0 / n as f64;
            let mut gnorm_sq = 0.0;
            for c in 0..k {
                let wrow: Vec<f64> = w.row(c).to_vec();
                let grow = grad.row_mut(c);
                for (j, g) in grow.iter_mut().enumerate() {
                    *g *= inv_n;
                    if cfg.l2 > 0.0 && j > 0 {
                        *g += cfg.l2 * wrow[j];
                    }
                    gnorm_sq += *g * *g;
                }
            }
            if gnorm_sq.sqrt() <= cfg.tol {
                converged = true;
                break;
            }
            for c in 0..k {
                let grow: Vec<f64> = grad.row(c).to_vec();
                ops::axpy(-cfg.learning_rate, &grow, w.row_mut(c));
            }
        }
        Ok(SoftmaxRegression { classes, weights: w, iterations, converged })
    }

    /// Class probabilities for one row (aligned with `classes`).
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        let k = self.classes.len();
        let mut probs = Vec::with_capacity(k);
        for c in 0..k {
            let wrow = self.weights.row(c);
            probs.push(wrow[0] + ops::dot(&wrow[1..], row));
        }
        softmax_row(&mut probs);
        probs
    }

    /// Predicted class for one row.
    pub fn predict_row(&self, row: &[f64]) -> i64 {
        let probs = self.predict_proba_row(row);
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .expect("at least two classes")
            .0;
        self.classes[best]
    }

    /// Predictions for every row of `x`.
    pub fn predict(&self, x: &Dense) -> Vec<i64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Classification accuracy.
    pub fn accuracy(&self, x: &Dense, y: &[i64]) -> f64 {
        let correct = self.predict(x).iter().zip(y).filter(|(p, t)| p == t).count();
        correct as f64 / y.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> (Dense, Vec<i64>) {
        let x = Dense::from_fn(150, 2, |r, c| {
            let center: (f64, f64) = match r % 3 {
                0 => (0.0, 0.0),
                1 => (6.0, 0.0),
                _ => (3.0, 6.0),
            };
            let jitter = (((r * 17 + c * 5) % 11) as f64) / 11.0 - 0.5;
            if c == 0 {
                center.0 + jitter
            } else {
                center.1 + jitter
            }
        });
        let y = (0..150).map(|r| (r % 3) as i64 * 10).collect(); // labels 0, 10, 20
        (x, y)
    }

    #[test]
    fn separates_three_classes() {
        let (x, y) = three_blobs();
        let m = SoftmaxRegression::fit(&x, &y, &SoftmaxConfig::default()).unwrap();
        assert_eq!(m.classes, vec![0, 10, 20]);
        assert!(m.accuracy(&x, &y) > 0.99, "acc {}", m.accuracy(&x, &y));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = three_blobs();
        let m = SoftmaxRegression::fit(&x, &y, &SoftmaxConfig::default()).unwrap();
        for r in 0..10 {
            let p = m.predict_proba_row(x.row(r));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn two_class_softmax_agrees_with_binary_logreg_predictions() {
        let x = Dense::from_fn(100, 1, |r, _| r as f64 / 50.0 - 1.0);
        let yb: Vec<f64> = (0..100).map(|r| f64::from(r >= 50)).collect();
        let yi: Vec<i64> = yb.iter().map(|&v| v as i64).collect();
        let sm = SoftmaxRegression::fit(
            &x,
            &yi,
            &SoftmaxConfig { max_iter: 3000, ..Default::default() },
        )
        .unwrap();
        let lr = crate::logreg::LogisticRegression::fit(
            &x,
            &yb,
            &crate::logreg::LogRegConfig { max_iter: 3000, ..Default::default() },
        )
        .unwrap();
        let sm_preds: Vec<f64> = sm.predict(&x).iter().map(|&v| v as f64).collect();
        let lr_preds = lr.predict(&x);
        assert_eq!(sm_preds, lr_preds, "two-class softmax must match binary logreg decisions");
    }

    #[test]
    fn stability_under_large_scores() {
        let x = Dense::from_fn(40, 1, |r, _| if r % 2 == 0 { -1e3 } else { 1e3 });
        let y: Vec<i64> = (0..40).map(|r| (r % 2) as i64).collect();
        let m =
            SoftmaxRegression::fit(&x, &y, &SoftmaxConfig { max_iter: 50, ..Default::default() })
                .unwrap();
        let p = m.predict_proba_row(&[1e3]);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn l2_and_validation() {
        let (x, y) = three_blobs();
        let plain =
            SoftmaxRegression::fit(&x, &y, &SoftmaxConfig { max_iter: 200, ..Default::default() })
                .unwrap();
        let reg = SoftmaxRegression::fit(
            &x,
            &y,
            &SoftmaxConfig { max_iter: 200, l2: 1.0, ..Default::default() },
        )
        .unwrap();
        assert!(reg.weights.frobenius_norm() < plain.weights.frobenius_norm());
        assert!(SoftmaxRegression::fit(&x, &y[..5], &SoftmaxConfig::default()).is_err());
        assert!(SoftmaxRegression::fit(&x, &vec![7; 150], &SoftmaxConfig::default()).is_err());
    }
}
