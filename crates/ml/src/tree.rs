//! CART decision-tree classifier with Gini impurity.

use crate::MlError;
use dm_matrix::Dense;

/// Hyperparameters for tree induction.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum impurity decrease for a split to be kept. The default of 0
    /// admits zero-gain splits (the CART convention), which is what lets the
    /// greedy induction work through XOR-like patterns where the first split
    /// alone buys nothing.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 8, min_samples_split: 2, min_gain: 0.0 }
    }
}

/// Tree node, indexed into the model's arena.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Internal split: `feature <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold (inclusive left).
        threshold: f64,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    /// Leaf with a predicted class.
    Leaf {
        /// Predicted class label.
        class: i64,
        /// Training rows that reached this leaf.
        samples: usize,
    },
}

/// A fitted CART classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

fn gini(counts: &std::collections::HashMap<i64, usize>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts.values() {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

fn majority(counts: &std::collections::HashMap<i64, usize>) -> i64 {
    *counts
        .iter()
        .max_by_key(|(label, &count)| (count, std::cmp::Reverse(**label)))
        .expect("non-empty class counts")
        .0
}

fn class_counts(y: &[i64], rows: &[usize]) -> std::collections::HashMap<i64, usize> {
    let mut m = std::collections::HashMap::new();
    for &r in rows {
        *m.entry(y[r]).or_insert(0) += 1;
    }
    m
}

struct Builder<'a> {
    x: &'a Dense,
    y: &'a [i64],
    cfg: TreeConfig,
    nodes: Vec<Node>,
}

impl Builder<'_> {
    /// Find the best `(feature, threshold, gain)` split of `rows` by scanning
    /// each feature's sorted values and evaluating midpoints between class
    /// changes.
    fn best_split(&self, rows: &[usize], parent_gini: f64) -> Option<(usize, f64, f64)> {
        let n = rows.len();
        let mut best: Option<(usize, f64, f64)> = None;
        for f in 0..self.x.cols() {
            let mut vals: Vec<(f64, i64)> =
                rows.iter().map(|&r| (self.x.get(r, f), self.y[r])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("feature values must not be NaN"));
            // Streaming left/right class counts across the sorted order.
            let mut left: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
            let mut right: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
            for &(_, label) in &vals {
                *right.entry(label).or_insert(0) += 1;
            }
            for i in 0..n - 1 {
                let (v, label) = vals[i];
                *left.entry(label).or_insert(0) += 1;
                let rc = right.get_mut(&label).expect("label present on the right");
                *rc -= 1;
                if *rc == 0 {
                    right.remove(&label);
                }
                let next_v = vals[i + 1].0;
                if v == next_v {
                    continue; // cannot split between equal values
                }
                let nl = i + 1;
                let nr = n - nl;
                let weighted =
                    (nl as f64 * gini(&left, nl) + nr as f64 * gini(&right, nr)) / n as f64;
                let gain = parent_gini - weighted;
                if gain >= self.cfg.min_gain && best.is_none_or(|(.., g)| gain > g) {
                    best = Some((f, (v + next_v) / 2.0, gain));
                }
            }
        }
        best
    }

    fn build(&mut self, rows: Vec<usize>, depth: usize) -> usize {
        let counts = class_counts(self.y, &rows);
        let parent_gini = gini(&counts, rows.len());
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { class: majority(&counts), samples: rows.len() });
            nodes.len() - 1
        };
        if depth >= self.cfg.max_depth
            || rows.len() < self.cfg.min_samples_split
            || parent_gini == 0.0
        {
            return make_leaf(&mut self.nodes);
        }
        let Some((feature, threshold, _)) = self.best_split(&rows, parent_gini) else {
            return make_leaf(&mut self.nodes);
        };
        let (lrows, rrows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| self.x.get(r, feature) <= threshold);
        debug_assert!(!lrows.is_empty() && !rrows.is_empty(), "split must separate rows");
        // Reserve this node's slot before recursing so children indices work out.
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0, samples: 0 }); // placeholder
        let left = self.build(lrows, depth + 1);
        let right = self.build(rrows, depth + 1);
        self.nodes[idx] = Node::Split { feature, threshold, left, right };
        idx
    }
}

impl DecisionTree {
    /// Induce a tree from features `x` and integer labels `y`.
    ///
    /// # Errors
    /// [`MlError::Shape`] on length mismatch or empty data. NaN feature values
    /// panic (feature values are sorted during split search).
    pub fn fit(x: &Dense, y: &[i64], cfg: &TreeConfig) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        let mut b = Builder { x, y, cfg: *cfg, nodes: Vec::new() };
        let root = b.build((0..x.rows()).collect(), 0);
        debug_assert_eq!(root, 0);
        Ok(DecisionTree { nodes: b.nodes })
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        walk(&self.nodes, 0)
    }

    /// Predict the class of one row.
    pub fn predict_row(&self, row: &[f64]) -> i64 {
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { class, .. } => return class,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Predictions for every row of `x`.
    pub fn predict(&self, x: &Dense) -> Vec<i64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Classification accuracy.
    pub fn accuracy(&self, x: &Dense, y: &[i64]) -> f64 {
        let correct = self.predict(x).iter().zip(y).filter(|(p, t)| p == t).count();
        correct as f64 / y.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish pattern requiring depth 2: class = (x0 > 0.5) ^ (x1 > 0.5).
    fn xor_data() -> (Dense, Vec<i64>) {
        let pts = [(0.0, 0.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for rep in 0..10 {
            for &(a, b, label) in &pts {
                let eps = rep as f64 * 0.001;
                rows.push(vec![a + eps, b - eps]);
                y.push(label);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Dense::from_rows(&refs), y)
    }

    #[test]
    fn learns_xor_perfectly() {
        let (x, y) = xor_data();
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(t.accuracy(&x, &y), 1.0);
        assert!(t.depth() >= 2, "XOR needs at least two levels");
    }

    #[test]
    fn linear_boundary_is_shallow() {
        let x = Dense::from_fn(40, 1, |r, _| r as f64);
        let y: Vec<i64> = (0..40).map(|r| if r < 20 { 0 } else { 1 }).collect();
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.predict_row(&[5.0]), 0);
        assert_eq!(t.predict_row(&[30.0]), 1);
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor_data();
        let t =
            DecisionTree::fit(&x, &y, &TreeConfig { max_depth: 1, ..Default::default() }).unwrap();
        assert!(t.depth() <= 1);
        // Depth-1 tree cannot solve XOR.
        assert!(t.accuracy(&x, &y) < 0.8);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Dense::from_fn(10, 1, |r, _| r as f64);
        let y = vec![3i64; 10];
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict_row(&[100.0]), 3);
    }

    #[test]
    fn min_samples_split_respected() {
        let (x, y) = xor_data();
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig { min_samples_split: 1000, ..Default::default() },
        )
        .unwrap();
        assert_eq!(t.num_nodes(), 1, "cannot split below the sample threshold");
    }

    #[test]
    fn identical_features_yield_leaf() {
        // No split can separate identical feature vectors.
        let x = Dense::filled(10, 2, 1.0);
        let y: Vec<i64> = (0..10).map(|r| (r % 2) as i64).collect();
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn multiclass_splits() {
        let x = Dense::from_fn(30, 1, |r, _| r as f64);
        let y: Vec<i64> = (0..30).map(|r| (r / 10) as i64).collect();
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(t.accuracy(&x, &y), 1.0);
        assert_eq!(t.predict_row(&[5.0]), 0);
        assert_eq!(t.predict_row(&[15.0]), 1);
        assert_eq!(t.predict_row(&[25.0]), 2);
    }

    #[test]
    fn validation_errors() {
        let (x, y) = xor_data();
        assert!(matches!(
            DecisionTree::fit(&x, &y[..3], &TreeConfig::default()),
            Err(MlError::Shape(_))
        ));
        assert!(matches!(
            DecisionTree::fit(&Dense::zeros(0, 1), &[], &TreeConfig::default()),
            Err(MlError::Shape(_))
        ));
    }
}
