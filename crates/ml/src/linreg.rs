//! Linear regression with three interchangeable solvers.

use crate::glm::{train_gd, Family, GdConfig};
use crate::MlError;
use dm_matrix::{ops, solve, Dense};

/// How to solve the least-squares problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Form `XᵀX` and Cholesky-solve (one pass over X; the in-database
    /// favourite because the Gram matrix is a distributable aggregate).
    NormalEquations,
    /// Conjugate gradient on the normal equations, matrix-free.
    ConjugateGradient,
    /// Full-batch gradient descent.
    GradientDescent,
}

/// A fitted linear regression model (intercept handled internally).
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Per-feature coefficients.
    pub coefficients: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
    /// Solver used to fit.
    pub solver: Solver,
}

impl LinearRegression {
    /// Fit `y ≈ X·β + b` with optional ridge penalty `l2` (not applied to the
    /// intercept).
    ///
    /// # Errors
    /// * [`MlError::Shape`] on `x.rows() != y.len()` or empty data.
    /// * [`MlError::Degenerate`] when normal equations are singular and `l2 == 0`.
    pub fn fit(x: &Dense, y: &[f64], solver: Solver, l2: f64) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        if l2 < 0.0 {
            return Err(MlError::BadParam(format!("negative l2: {l2}")));
        }
        // Augment with an intercept column of ones.
        let xa = Dense::filled(x.rows(), 1, 1.0).hcat(x);
        let d = xa.cols();
        let weights = match solver {
            Solver::NormalEquations => {
                let mut gram = ops::crossprod(&xa);
                // Ridge on all but the intercept.
                for j in 1..d {
                    gram.set(j, j, gram.get(j, j) + l2 * x.rows() as f64);
                }
                let xty = ops::tmv(&xa, y);
                solve::solve_spd(&gram, &xty).map_err(|e| match e {
                    dm_matrix::MatrixError::NotPositiveDefinite { pivot } => MlError::Degenerate(
                        format!("normal equations singular at pivot {pivot}; add ridge"),
                    ),
                    other => other.into(),
                })?
            }
            Solver::ConjugateGradient => {
                // Solve (XᵀX + n·λ·D) w = Xᵀy matrix-free, where D zeroes the
                // intercept's penalty.
                let xty = ops::tmv(&xa, y);
                let nl2 = l2 * x.rows() as f64;
                solve::conjugate_gradient(
                    |w| {
                        let xw = ops::gemv(&xa, w);
                        let mut g = ops::tmv(&xa, &xw);
                        if nl2 > 0.0 {
                            for j in 1..d {
                                g[j] += nl2 * w[j];
                            }
                        }
                        g
                    },
                    &xty,
                    solve::CgOptions { max_iter: 10_000, tol: 1e-9 },
                )?
            }
            Solver::GradientDescent => {
                // Scale-aware step size: 1 / largest Gram diagonal.
                let gram_diag_max = (0..d)
                    .map(|j| xa.col_vec(j).iter().map(|v| v * v).sum::<f64>() / x.rows() as f64)
                    .fold(0.0, f64::max);
                let cfg = GdConfig {
                    learning_rate: 1.0 / gram_diag_max.max(1e-12) / d as f64,
                    max_iter: 100_000,
                    tol: 1e-8,
                    l2,
                    skip_reg_first: true,
                };
                train_gd(|w| ops::gemv(&xa, w), |r| ops::tmv(&xa, r), y, d, Family::Gaussian, &cfg)?
                    .weights
            }
        };
        Ok(LinearRegression { intercept: weights[0], coefficients: weights[1..].to_vec(), solver })
    }

    /// Predict a single row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the number of coefficients.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.intercept + ops::dot(row, &self.coefficients)
    }

    /// Predict every row of `x`.
    pub fn predict(&self, x: &Dense) -> Vec<f64> {
        let mut out = ops::gemv(x, &self.coefficients);
        for v in &mut out {
            *v += self.intercept;
        }
        out
    }

    /// Coefficient of determination R² on `(x, y)`.
    pub fn r2(&self, x: &Dense, y: &[f64]) -> f64 {
        let preds = self.predict(x);
        let mean = y.iter().sum::<f64>() / y.len().max(1) as f64;
        let ss_res: f64 = preds.iter().zip(y).map(|(p, t)| (p - t) * (p - t)).sum();
        let ss_tot: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum();
        if ss_tot == 0.0 {
            // Constant target: perfect iff the residual is numerically zero.
            if ss_res <= 1e-10 * y.len() as f64 {
                1.0
            } else {
                f64::NEG_INFINITY
            }
        } else {
            1.0 - ss_res / ss_tot
        }
    }

    /// Mean squared error on `(x, y)`.
    pub fn mse(&self, x: &Dense, y: &[f64]) -> f64 {
        let preds = self.predict(x);
        preds.iter().zip(y).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / y.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize) -> (Dense, Vec<f64>) {
        // y = 3 - 2*x0 + 0.5*x1, deterministic features.
        let x = Dense::from_fn(
            n,
            2,
            |r, c| {
                if c == 0 {
                    (r % 10) as f64
                } else {
                    ((r * 3) % 7) as f64
                }
            },
        );
        let y = (0..n).map(|r| 3.0 - 2.0 * x.get(r, 0) + 0.5 * x.get(r, 1)).collect();
        (x, y)
    }

    #[test]
    fn all_solvers_recover_coefficients() {
        let (x, y) = synthetic(200);
        for solver in [Solver::NormalEquations, Solver::ConjugateGradient, Solver::GradientDescent]
        {
            let m = LinearRegression::fit(&x, &y, solver, 0.0).unwrap();
            assert!((m.intercept - 3.0).abs() < 1e-2, "{solver:?}: {m:?}");
            assert!((m.coefficients[0] + 2.0).abs() < 1e-2, "{solver:?}");
            assert!((m.coefficients[1] - 0.5).abs() < 1e-2, "{solver:?}");
            assert!(m.r2(&x, &y) > 0.9999, "{solver:?}");
        }
    }

    #[test]
    fn solvers_agree_with_each_other() {
        let (x, y) = synthetic(100);
        let ne = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.1).unwrap();
        let cg = LinearRegression::fit(&x, &y, Solver::ConjugateGradient, 0.1).unwrap();
        assert!((ne.intercept - cg.intercept).abs() < 1e-4);
        for (a, b) in ne.coefficients.iter().zip(&cg.coefficients) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn ridge_handles_degenerate_features() {
        // An all-zero feature makes the Gram matrix exactly singular.
        let x = Dense::from_fn(50, 2, |r, c| if c == 0 { r as f64 } else { 0.0 });
        let y: Vec<f64> = (0..50).map(|r| r as f64).collect();
        assert!(matches!(
            LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.0),
            Err(MlError::Degenerate(_))
        ));
        let m = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.01).unwrap();
        assert!(m.r2(&x, &y) > 0.99);
    }

    #[test]
    fn collinear_features_still_fit_consistent_system() {
        // x1 = 2*x0 is rank deficient but the system is consistent; whichever
        // solution Cholesky lands on must still predict perfectly, and ridge
        // must also work.
        let x = Dense::from_fn(50, 2, |r, c| (r as f64) * if c == 0 { 1.0 } else { 2.0 });
        let y: Vec<f64> = (0..50).map(|r| r as f64).collect();
        match LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.0) {
            Ok(m) => assert!(m.r2(&x, &y) > 0.99),
            Err(MlError::Degenerate(_)) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
        let m = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.01).unwrap();
        assert!(m.r2(&x, &y) > 0.99);
    }

    #[test]
    fn predict_and_metrics() {
        let (x, y) = synthetic(60);
        let m = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.0).unwrap();
        assert!(m.mse(&x, &y) < 1e-10);
        assert!((m.predict(&x)[0] - y[0]).abs() < 1e-6);
        assert!((m.predict_row(&[0.0, 0.0]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn shape_and_param_validation() {
        let (x, y) = synthetic(10);
        assert!(matches!(
            LinearRegression::fit(&x, &y[..5], Solver::NormalEquations, 0.0),
            Err(MlError::Shape(_))
        ));
        assert!(matches!(
            LinearRegression::fit(&Dense::zeros(0, 2), &[], Solver::NormalEquations, 0.0),
            Err(MlError::Shape(_))
        ));
        assert!(matches!(
            LinearRegression::fit(&x, &y, Solver::NormalEquations, -1.0),
            Err(MlError::BadParam(_))
        ));
    }

    #[test]
    fn r2_constant_target() {
        let x = Dense::from_fn(10, 1, |r, _| r as f64);
        let y = vec![5.0; 10];
        let m = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.0).unwrap();
        assert_eq!(m.r2(&x, &y), 1.0);
    }
}
