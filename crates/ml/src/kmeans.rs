#![allow(clippy::needless_range_loop)] // index loops mirror the math in numeric kernels
//! Lloyd's k-means with k-means++ seeding.

use crate::MlError;
use dm_matrix::Dense;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyperparameters for k-means.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Stop when total centroid movement falls below this.
    pub tol: f64,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 2, max_iter: 100, tol: 1e-6, seed: 42 }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `k x d` centroid matrix.
    pub centroids: Dense,
    /// Cluster assignment of each training row.
    pub labels: Vec<usize>,
    /// Final within-cluster sum of squares (inertia).
    pub inertia: f64,
    /// Lloyd iterations run.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding: first center uniform, then proportional to squared
/// distance from the nearest chosen center.
fn init_plus_plus(x: &Dense, k: usize, rng: &mut StdRng) -> Dense {
    let n = x.rows();
    let mut centers = Dense::zeros(k, x.cols());
    let first = rng.gen_range(0..n);
    centers.row_mut(0).copy_from_slice(x.row(first));
    let mut d2: Vec<f64> = (0..n).map(|r| sq_dist(x.row(r), centers.row(0))).collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            // All points coincide with existing centers: any row works.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centers.row_mut(c).copy_from_slice(x.row(pick));
        for (r, d) in d2.iter_mut().enumerate() {
            let nd = sq_dist(x.row(r), centers.row(c));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centers
}

/// Run k-means on the rows of `x`.
///
/// # Errors
/// [`MlError::BadParam`] when `k == 0` or `k > x.rows()`;
/// [`MlError::Shape`] on empty data.
pub fn fit(x: &Dense, cfg: &KMeansConfig) -> Result<KMeans, MlError> {
    let n = x.rows();
    if n == 0 || x.cols() == 0 {
        return Err(MlError::Shape("empty training data".into()));
    }
    if cfg.k == 0 || cfg.k > n {
        return Err(MlError::BadParam(format!("k={} for {n} rows", cfg.k)));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut centroids = init_plus_plus(x, cfg.k, &mut rng);
    let mut labels = vec![0usize; n];
    let mut iterations = 0;

    for it in 0..cfg.max_iter {
        iterations = it + 1;
        // Assignment step.
        for r in 0..n {
            let row = x.row(r);
            let mut best = (0usize, f64::INFINITY);
            for c in 0..cfg.k {
                let d = sq_dist(row, centroids.row(c));
                if d < best.1 {
                    best = (c, d);
                }
            }
            labels[r] = best.0;
        }
        // Update step.
        let mut sums = Dense::zeros(cfg.k, x.cols());
        let mut counts = vec![0usize; cfg.k];
        for r in 0..n {
            let c = labels[r];
            counts[c] += 1;
            for (s, &v) in sums.row_mut(c).iter_mut().zip(x.row(r)) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..cfg.k {
            if counts[c] == 0 {
                // Empty cluster: re-seed at the point farthest from its centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(x.row(a), centroids.row(labels[a]))
                            .partial_cmp(&sq_dist(x.row(b), centroids.row(labels[b])))
                            .expect("distances are finite")
                    })
                    .expect("n > 0");
                movement += sq_dist(centroids.row(c), x.row(far)).sqrt();
                centroids.row_mut(c).copy_from_slice(x.row(far));
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let old: Vec<f64> = centroids.row(c).to_vec();
            for (cc, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                *cc = s * inv;
            }
            movement += sq_dist(&old, centroids.row(c)).sqrt();
        }
        if movement < cfg.tol {
            break;
        }
    }

    let inertia = (0..n).map(|r| sq_dist(x.row(r), centroids.row(labels[r]))).sum();
    Ok(KMeans { centroids, labels, inertia, iterations })
}

impl KMeans {
    /// Assign new rows to the nearest centroid.
    pub fn predict(&self, x: &Dense) -> Vec<usize> {
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                (0..self.centroids.rows())
                    .min_by(|&a, &b| {
                        sq_dist(row, self.centroids.row(a))
                            .partial_cmp(&sq_dist(row, self.centroids.row(b)))
                            .expect("distances are finite")
                    })
                    .expect("at least one centroid")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs.
    fn blobs() -> Dense {
        Dense::from_fn(90, 2, |r, c| {
            let center = match r / 30 {
                0 => (0.0, 0.0),
                1 => (10.0, 10.0),
                _ => (20.0, 0.0),
            };
            let jitter = (((r * 13 + c * 7) % 10) as f64) / 10.0 - 0.5;
            if c == 0 {
                center.0 + jitter
            } else {
                center.1 + jitter
            }
        })
    }

    #[test]
    fn recovers_three_blobs() {
        let x = blobs();
        let m = fit(&x, &KMeansConfig { k: 3, ..KMeansConfig::default() }).unwrap();
        // Each blob's rows share a label, and the three labels are distinct.
        let l0 = m.labels[0];
        let l1 = m.labels[30];
        let l2 = m.labels[60];
        assert!(l0 != l1 && l1 != l2 && l0 != l2);
        for r in 0..30 {
            assert_eq!(m.labels[r], l0);
            assert_eq!(m.labels[30 + r], l1);
            assert_eq!(m.labels[60 + r], l2);
        }
        assert!(m.inertia < 90.0 * 0.5, "tight clusters: inertia {}", m.inertia);
    }

    #[test]
    fn more_clusters_reduce_inertia() {
        let x = blobs();
        let m1 = fit(&x, &KMeansConfig { k: 1, ..KMeansConfig::default() }).unwrap();
        let m3 = fit(&x, &KMeansConfig { k: 3, ..KMeansConfig::default() }).unwrap();
        assert!(m3.inertia < m1.inertia / 10.0);
    }

    #[test]
    fn predict_matches_training_labels() {
        let x = blobs();
        let m = fit(&x, &KMeansConfig { k: 3, ..KMeansConfig::default() }).unwrap();
        assert_eq!(m.predict(&x), m.labels);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = blobs();
        let cfg = KMeansConfig { k: 3, seed: 7, ..KMeansConfig::default() };
        let a = fit(&x, &cfg).unwrap();
        let b = fit(&x, &cfg).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = Dense::from_fn(5, 2, |r, c| (r * 2 + c) as f64);
        let m = fit(&x, &KMeansConfig { k: 5, ..KMeansConfig::default() }).unwrap();
        assert!(m.inertia < 1e-12);
    }

    #[test]
    fn param_validation() {
        let x = blobs();
        assert!(matches!(
            fit(&x, &KMeansConfig { k: 0, ..Default::default() }),
            Err(MlError::BadParam(_))
        ));
        assert!(matches!(
            fit(&x, &KMeansConfig { k: 91, ..Default::default() }),
            Err(MlError::BadParam(_))
        ));
        assert!(matches!(
            fit(&Dense::zeros(0, 2), &KMeansConfig::default()),
            Err(MlError::Shape(_))
        ));
    }

    #[test]
    fn identical_points_handled() {
        let x = Dense::filled(10, 2, 3.0);
        let m = fit(&x, &KMeansConfig { k: 2, ..KMeansConfig::default() }).unwrap();
        assert!(m.inertia < 1e-12);
    }
}
