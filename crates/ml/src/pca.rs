//! Principal component analysis via power iteration with deflation.

use crate::MlError;
use dm_matrix::{ops, Dense};

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means subtracted before projection.
    pub means: Vec<f64>,
    /// `k x d` principal components (rows are unit vectors).
    pub components: Dense,
    /// Variance explained by each component.
    pub explained_variance: Vec<f64>,
}

/// Options for the power-iteration eigensolver.
#[derive(Debug, Clone, Copy)]
pub struct PcaConfig {
    /// Number of components to extract.
    pub k: usize,
    /// Power iterations per component.
    pub max_iter: usize,
    /// Convergence threshold on eigenvector change.
    pub tol: f64,
}

impl Default for PcaConfig {
    fn default() -> Self {
        PcaConfig { k: 2, max_iter: 500, tol: 1e-10 }
    }
}

/// Fit PCA on the rows of `x`.
///
/// The covariance matrix `C = (X - μ)ᵀ(X - μ) / n` is formed once, then each
/// leading eigenpair is extracted by power iteration and deflated out.
///
/// # Errors
/// [`MlError::Shape`] on empty data, [`MlError::BadParam`] when `k` exceeds
/// the feature count.
pub fn fit(x: &Dense, cfg: &PcaConfig) -> Result<Pca, MlError> {
    let (n, d) = x.shape();
    if n == 0 || d == 0 {
        return Err(MlError::Shape("empty training data".into()));
    }
    if cfg.k == 0 || cfg.k > d {
        return Err(MlError::BadParam(format!("k={} for {d} features", cfg.k)));
    }
    let means = ops::col_means(x);
    let mut centered = x.clone();
    for r in 0..n {
        for (v, &m) in centered.row_mut(r).iter_mut().zip(&means) {
            *v -= m;
        }
    }
    let mut cov = ops::crossprod(&centered);
    let inv_n = 1.0 / n as f64;
    cov.map_inplace(|v| v * inv_n);

    let mut components = Dense::zeros(cfg.k, d);
    let mut explained = Vec::with_capacity(cfg.k);
    for comp in 0..cfg.k {
        // Deterministic start vector that is unlikely to be orthogonal to the
        // leading eigenvector: e_comp + small ramp.
        let mut v: Vec<f64> = (0..d).map(|j| 1.0 + (j as f64) * 1e-3).collect();
        v[comp % d] += 1.0;
        normalize(&mut v);
        let mut eigenvalue = 0.0;
        for _ in 0..cfg.max_iter {
            let mut w = ops::gemv(&cov, &v);
            eigenvalue = ops::dot(&w, &v);
            let norm = ops::norm2(&w);
            if norm < 1e-300 {
                // Covariance is (numerically) zero in the remaining subspace.
                eigenvalue = 0.0;
                break;
            }
            for wi in &mut w {
                *wi /= norm;
            }
            let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            v = w;
            if delta < cfg.tol {
                break;
            }
        }
        components.row_mut(comp).copy_from_slice(&v);
        explained.push(eigenvalue.max(0.0));
        // Deflate: C -= λ v vᵀ.
        for i in 0..d {
            for j in 0..d {
                let c = cov.get(i, j) - eigenvalue * v[i] * v[j];
                cov.set(i, j, c);
            }
        }
    }
    Ok(Pca { means, components, explained_variance: explained })
}

fn normalize(v: &mut [f64]) {
    let n = ops::norm2(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

impl Pca {
    /// Project rows of `x` onto the principal components (`n x k` scores).
    pub fn transform(&self, x: &Dense) -> Dense {
        let (n, _) = x.shape();
        let k = self.components.rows();
        let mut out = Dense::zeros(n, k);
        for r in 0..n {
            let row = x.row(r);
            let centered: Vec<f64> = row.iter().zip(&self.means).map(|(&v, &m)| v - m).collect();
            for c in 0..k {
                out.set(r, c, ops::dot(&centered, self.components.row(c)));
            }
        }
        out
    }

    /// Reconstruct from scores back to the original feature space.
    pub fn inverse_transform(&self, scores: &Dense) -> Dense {
        let (n, k) = scores.shape();
        let d = self.components.cols();
        let mut out = Dense::zeros(n, d);
        for r in 0..n {
            let dst = out.row_mut(r);
            dst.copy_from_slice(&vec![0.0; d]);
            for c in 0..k {
                let s = scores.get(r, c);
                for (o, &pc) in dst.iter_mut().zip(self.components.row(c)) {
                    *o += s * pc;
                }
            }
            for (o, &m) in dst.iter_mut().zip(&self.means) {
                *o += m;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data lying (almost) on the line y = 2x in 2-D.
    fn line_data() -> Dense {
        Dense::from_fn(100, 2, |r, c| {
            let t = r as f64 / 10.0;
            let noise = (((r * 7) % 5) as f64 - 2.0) * 0.01;
            if c == 0 {
                t + noise
            } else {
                2.0 * t - noise
            }
        })
    }

    #[test]
    fn first_component_follows_dominant_direction() {
        let x = line_data();
        let p = fit(&x, &PcaConfig { k: 2, ..PcaConfig::default() }).unwrap();
        let pc1 = p.components.row(0);
        // Direction (1, 2)/sqrt(5), up to sign.
        let expected = [1.0 / 5f64.sqrt(), 2.0 / 5f64.sqrt()];
        let dot: f64 = pc1.iter().zip(&expected).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.999, "pc1 {pc1:?}");
        assert!(p.explained_variance[0] > 100.0 * p.explained_variance[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let x = Dense::from_fn(60, 3, |r, c| ((r * (c + 1) * 13) % 17) as f64);
        let p = fit(&x, &PcaConfig { k: 3, ..PcaConfig::default() }).unwrap();
        for i in 0..3 {
            assert!((ops::norm2(p.components.row(i)) - 1.0).abs() < 1e-6);
            for j in (i + 1)..3 {
                let d = ops::dot(p.components.row(i), p.components.row(j));
                assert!(d.abs() < 1e-6, "components {i},{j} not orthogonal: {d}");
            }
        }
        // Explained variance is non-increasing.
        for w in p.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn transform_reconstruction_error_small_on_low_rank_data() {
        let x = line_data();
        let p = fit(&x, &PcaConfig { k: 1, ..PcaConfig::default() }).unwrap();
        let scores = p.transform(&x);
        assert_eq!(scores.shape(), (100, 1));
        let rec = p.inverse_transform(&scores);
        assert!(rec.max_abs_diff(&x) < 0.1, "rank-1 data reconstructs from one component");
    }

    #[test]
    fn transform_centers_data() {
        let x = line_data();
        let p = fit(&x, &PcaConfig { k: 2, ..PcaConfig::default() }).unwrap();
        let scores = p.transform(&x);
        let means = ops::col_means(&scores);
        for m in means {
            assert!(m.abs() < 1e-8, "scores must be centered");
        }
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let x = Dense::filled(10, 2, 5.0);
        let p = fit(&x, &PcaConfig { k: 1, ..PcaConfig::default() }).unwrap();
        assert!(p.explained_variance[0] < 1e-12);
    }

    #[test]
    fn param_validation() {
        let x = line_data();
        assert!(matches!(
            fit(&x, &PcaConfig { k: 0, ..Default::default() }),
            Err(MlError::BadParam(_))
        ));
        assert!(matches!(
            fit(&x, &PcaConfig { k: 3, ..Default::default() }),
            Err(MlError::BadParam(_))
        ));
        assert!(matches!(fit(&Dense::zeros(0, 2), &PcaConfig::default()), Err(MlError::Shape(_))));
    }
}
