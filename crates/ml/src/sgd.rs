//! Mini-batch stochastic gradient descent.
//!
//! The tutorial's data-access story for iterative ML: instead of full-batch
//! passes, visit the data in shuffled mini-batches — one pass (epoch) touches
//! every row once, batch size trades gradient variance against per-step cost,
//! and the access pattern (sequential within a batch, shuffled across epochs)
//! is what the storage layer has to serve efficiently.

use crate::glm::Family;
use crate::MlError;
use dm_matrix::{ops, Dense};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for mini-batch SGD.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Initial step size.
    pub learning_rate: f64,
    /// Rows per mini-batch.
    pub batch_size: usize,
    /// Number of full passes over the data.
    pub epochs: usize,
    /// L2 regularization strength (intercept exempt when `skip_reg_first`).
    pub l2: f64,
    /// Exclude coefficient 0 from regularization.
    pub skip_reg_first: bool,
    /// Multiplicative step-size decay applied after each epoch.
    pub decay: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.1,
            batch_size: 32,
            epochs: 20,
            l2: 0.0,
            skip_reg_first: false,
            decay: 0.95,
            seed: 42,
        }
    }
}

/// Result of an SGD run.
#[derive(Debug, Clone)]
pub struct SgdFit {
    /// Learned coefficients.
    pub weights: Vec<f64>,
    /// Mean training loss recorded at the end of each epoch.
    pub epoch_losses: Vec<f64>,
}

fn loss_of(family: Family, eta: f64, y: f64) -> f64 {
    match family {
        Family::Gaussian => 0.5 * (eta - y) * (eta - y),
        Family::Binomial => {
            // Numerically stable log(1 + exp(eta)) - y*eta.
            let softplus = if eta > 0.0 { eta + (-eta).exp().ln_1p() } else { eta.exp().ln_1p() };
            softplus - y * eta
        }
    }
}

/// Train a GLM by mini-batch SGD over the rows of `x`.
///
/// # Errors
/// [`MlError::Shape`] on row/label mismatch or empty data;
/// [`MlError::BadParam`] for a zero batch size or non-positive epochs.
pub fn train_sgd(x: &Dense, y: &[f64], family: Family, cfg: &SgdConfig) -> Result<SgdFit, MlError> {
    let n = x.rows();
    let d = x.cols();
    if n != y.len() {
        return Err(MlError::Shape(format!("{n} rows vs {} labels", y.len())));
    }
    if n == 0 || d == 0 {
        return Err(MlError::Shape("empty training data".into()));
    }
    if cfg.batch_size == 0 || cfg.epochs == 0 {
        return Err(MlError::BadParam("batch_size and epochs must be positive".into()));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut w = vec![0.0; d];
    let mut grad = vec![0.0; d];
    let mut lr = cfg.learning_rate;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(cfg.batch_size) {
            grad.iter_mut().for_each(|g| *g = 0.0);
            for &r in batch {
                let row = x.row(r);
                let eta = ops::dot(row, &w);
                epoch_loss += loss_of(family, eta, y[r]);
                let resid = family.mean(eta) - y[r];
                ops::axpy(resid, row, &mut grad);
            }
            let inv_b = 1.0 / batch.len() as f64;
            for (j, g) in grad.iter_mut().enumerate() {
                *g *= inv_b;
                if cfg.l2 > 0.0 && !(cfg.skip_reg_first && j == 0) {
                    *g += cfg.l2 * w[j];
                }
            }
            ops::axpy(-lr, &grad, &mut w);
        }
        epoch_losses.push(epoch_loss / n as f64);
        lr *= cfg.decay;
    }
    Ok(SgdFit { weights: w, epoch_losses })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Dense, Vec<f64>, [f64; 2]) {
        let truth = [1.5, -2.0];
        let x = Dense::from_fn(n, 2, |r, c| {
            let t = (r * (c + 7)) % 23;
            (t as f64) / 23.0 - 0.5
        });
        let y = (0..n).map(|r| truth[0] * x.get(r, 0) + truth[1] * x.get(r, 1)).collect();
        (x, y, truth)
    }

    #[test]
    fn sgd_recovers_linear_model() {
        let (x, y, truth) = linear_data(500);
        let cfg = SgdConfig { learning_rate: 0.5, epochs: 100, decay: 0.98, ..Default::default() };
        let fit = train_sgd(&x, &y, Family::Gaussian, &cfg).unwrap();
        for (w, t) in fit.weights.iter().zip(&truth) {
            assert!((w - t).abs() < 0.05, "weights {:?}", fit.weights);
        }
    }

    #[test]
    fn epoch_losses_decrease() {
        let (x, y, _) = linear_data(300);
        let cfg = SgdConfig { learning_rate: 0.2, epochs: 30, ..Default::default() };
        let fit = train_sgd(&x, &y, Family::Gaussian, &cfg).unwrap();
        assert_eq!(fit.epoch_losses.len(), 30);
        let first = fit.epoch_losses[0];
        let last = *fit.epoch_losses.last().unwrap();
        assert!(last < first / 2.0, "loss must drop: {first} -> {last}");
    }

    #[test]
    fn binomial_sgd_classifies() {
        let x = Dense::from_fn(400, 1, |r, _| (r as f64 / 200.0) - 1.0);
        let y: Vec<f64> = (0..400).map(|r| if r >= 200 { 1.0 } else { 0.0 }).collect();
        let cfg = SgdConfig { learning_rate: 1.0, epochs: 60, ..Default::default() };
        let fit = train_sgd(&x, &y, Family::Binomial, &cfg).unwrap();
        assert!(fit.weights[0] > 1.0, "positive slope expected: {:?}", fit.weights);
        // Loss ends below chance (ln 2).
        assert!(*fit.epoch_losses.last().unwrap() < 0.6);
    }

    #[test]
    fn batch_size_one_and_full_batch_both_work() {
        let (x, y, _) = linear_data(64);
        for bs in [1usize, 64, 1000] {
            // Full-batch runs take one step per epoch, so disable decay and
            // give every configuration enough epochs to converge.
            let cfg = SgdConfig {
                batch_size: bs,
                epochs: 400,
                learning_rate: 0.3,
                decay: 1.0,
                ..Default::default()
            };
            let fit = train_sgd(&x, &y, Family::Gaussian, &cfg).unwrap();
            assert!(*fit.epoch_losses.last().unwrap() < 0.05, "bs={bs}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y, _) = linear_data(100);
        let cfg = SgdConfig::default();
        let a = train_sgd(&x, &y, Family::Gaussian, &cfg).unwrap();
        let b = train_sgd(&x, &y, Family::Gaussian, &cfg).unwrap();
        assert_eq!(a.weights, b.weights);
        let c = train_sgd(&x, &y, Family::Gaussian, &SgdConfig { seed: 1, ..cfg }).unwrap();
        assert_ne!(a.weights, c.weights, "different shuffles, different trajectories");
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y, _) = linear_data(200);
        let base = SgdConfig { epochs: 60, learning_rate: 0.3, ..Default::default() };
        let plain = train_sgd(&x, &y, Family::Gaussian, &base).unwrap();
        let reg = train_sgd(&x, &y, Family::Gaussian, &SgdConfig { l2: 1.0, ..base }).unwrap();
        assert!(ops::norm2(&reg.weights) < ops::norm2(&plain.weights));
    }

    #[test]
    fn validation() {
        let (x, y, _) = linear_data(10);
        assert!(train_sgd(&x, &y[..5], Family::Gaussian, &SgdConfig::default()).is_err());
        assert!(train_sgd(
            &x,
            &y,
            Family::Gaussian,
            &SgdConfig { batch_size: 0, ..Default::default() }
        )
        .is_err());
        assert!(train_sgd(
            &x,
            &y,
            Family::Gaussian,
            &SgdConfig { epochs: 0, ..Default::default() }
        )
        .is_err());
    }
}
