//! # dm-ml
//!
//! ML algorithms on the `dm-matrix` substrate — the algorithm layer that the
//! tutorial's surveyed systems (in-database analytics libraries, declarative
//! ML compilers, lifecycle tools) all train and serve.
//!
//! The crate is organized around a **matrix-free GLM core** ([`glm`]): the
//! gradient-descent and conjugate-gradient trainers accept closures for
//! `X·w` and `Xᵀ·r`, so the same optimizer runs over dense matrices,
//! compressed matrices (`dm-compress`), and factorized joins
//! (`dm-factorized`) — that pluggability *is* the data-management story.
//!
//! Algorithms:
//! * [`linreg::LinearRegression`] — normal equations / CG / gradient descent, ridge.
//! * [`logreg::LogisticRegression`] — batch gradient descent with L2.
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding.
//! * [`naive_bayes`] — Gaussian and Multinomial NB.
//! * [`pca`] — power-iteration PCA with deflation.
//! * [`tree::DecisionTree`] — CART with Gini impurity.
//!
//! ```
//! use dm_matrix::Dense;
//! use dm_ml::linreg::{LinearRegression, Solver};
//!
//! let x = Dense::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
//! let y = [2.0, 4.0, 6.0, 8.0];
//! let model = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.0).unwrap();
//! assert!((model.predict_row(&[5.0]) - 10.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod forest;
pub mod glm;
pub mod kmeans;
pub mod linreg;
pub mod logreg;
pub mod naive_bayes;
pub mod pca;
pub mod sgd;
pub mod softmax;
pub mod tree;

/// Errors surfaced by model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Features/labels disagree in length, or a shape is otherwise invalid.
    Shape(String),
    /// The training data is degenerate for this model (e.g. one class,
    /// singular Gram matrix).
    Degenerate(String),
    /// An optimizer failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final gradient/residual norm.
        residual: f64,
    },
    /// Invalid hyperparameter.
    BadParam(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::Shape(m) => write!(f, "shape error: {m}"),
            MlError::Degenerate(m) => write!(f, "degenerate training data: {m}"),
            MlError::NoConvergence { iterations, residual } => {
                write!(f, "did not converge after {iterations} iterations (residual {residual:e})")
            }
            MlError::BadParam(m) => write!(f, "bad hyperparameter: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<dm_matrix::MatrixError> for MlError {
    fn from(e: dm_matrix::MatrixError) -> Self {
        match e {
            dm_matrix::MatrixError::DidNotConverge { iterations, residual } => {
                MlError::NoConvergence { iterations, residual }
            }
            other => MlError::Degenerate(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(MlError::Shape("x".into()).to_string().contains("shape"));
        assert!(MlError::NoConvergence { iterations: 5, residual: 0.1 }
            .to_string()
            .contains("5 iterations"));
    }

    #[test]
    fn matrix_error_conversion() {
        let e: MlError =
            dm_matrix::MatrixError::DidNotConverge { iterations: 3, residual: 1.0 }.into();
        assert!(matches!(e, MlError::NoConvergence { iterations: 3, .. }));
        let e: MlError = dm_matrix::MatrixError::Singular { column: 0 }.into();
        assert!(matches!(e, MlError::Degenerate(_)));
    }
}
