//! Binary logistic regression via the matrix-free GLM core.

use crate::glm::{sigmoid, train_gd, Family, GdConfig};
use crate::MlError;
use dm_matrix::{ops, Dense};

/// Hyperparameters for logistic regression.
#[derive(Debug, Clone, Copy)]
pub struct LogRegConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Maximum epochs.
    pub max_iter: usize,
    /// Gradient-norm stopping tolerance.
    pub tol: f64,
    /// L2 strength (intercept exempt).
    pub l2: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig { learning_rate: 0.5, max_iter: 5000, tol: 1e-6, l2: 0.0 }
    }
}

/// A fitted binary logistic-regression model. Labels are {0, 1}.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Per-feature coefficients.
    pub coefficients: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
    /// Epochs run during fitting.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

impl LogisticRegression {
    /// Fit on features `x` and labels `y ∈ {0, 1}`.
    ///
    /// # Errors
    /// * [`MlError::Shape`] on row/label count mismatch or empty data.
    /// * [`MlError::BadParam`] when labels are outside {0, 1}.
    /// * [`MlError::Degenerate`] when only one class is present.
    pub fn fit(x: &Dense, y: &[f64], cfg: &LogRegConfig) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        if y.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err(MlError::BadParam("labels must be 0 or 1".into()));
        }
        let pos = y.iter().filter(|&&v| v == 1.0).count();
        if pos == 0 || pos == y.len() {
            return Err(MlError::Degenerate("training data contains a single class".into()));
        }
        let xa = Dense::filled(x.rows(), 1, 1.0).hcat(x);
        let gd = GdConfig {
            learning_rate: cfg.learning_rate,
            max_iter: cfg.max_iter,
            tol: cfg.tol,
            l2: cfg.l2,
            skip_reg_first: true,
        };
        let fit = train_gd(
            |w| ops::gemv(&xa, w),
            |r| ops::tmv(&xa, r),
            y,
            xa.cols(),
            Family::Binomial,
            &gd,
        )?;
        Ok(LogisticRegression {
            intercept: fit.weights[0],
            coefficients: fit.weights[1..].to_vec(),
            iterations: fit.iterations,
            converged: fit.converged,
        })
    }

    /// P(y = 1 | row).
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        sigmoid(self.intercept + ops::dot(row, &self.coefficients))
    }

    /// P(y = 1) for every row of `x`.
    pub fn predict_proba(&self, x: &Dense) -> Vec<f64> {
        ops::gemv(x, &self.coefficients)
            .into_iter()
            .map(|eta| sigmoid(eta + self.intercept))
            .collect()
    }

    /// Hard {0,1} predictions at threshold 0.5.
    pub fn predict(&self, x: &Dense) -> Vec<f64> {
        self.predict_proba(x).into_iter().map(|p| if p > 0.5 { 1.0 } else { 0.0 }).collect()
    }

    /// Classification accuracy on `(x, y)`.
    pub fn accuracy(&self, x: &Dense, y: &[f64]) -> f64 {
        let preds = self.predict(x);
        let correct = preds.iter().zip(y).filter(|(p, t)| p == t).count();
        correct as f64 / y.len().max(1) as f64
    }

    /// Mean log loss on `(x, y)` (lower is better).
    pub fn log_loss(&self, x: &Dense, y: &[f64]) -> f64 {
        let probs = self.predict_proba(x);
        let eps = 1e-12;
        let total: f64 = probs
            .iter()
            .zip(y)
            .map(|(&p, &t)| {
                let p = p.clamp(eps, 1.0 - eps);
                -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
            })
            .sum();
        total / y.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic two-cluster data: class = x0 + x1 > 10.
    fn clusters(n: usize) -> (Dense, Vec<f64>) {
        let x = Dense::from_fn(n, 2, |r, c| {
            let noise = (((r * 37 + c * 11) % 13) as f64) / 13.0;
            if r % 2 == 0 {
                2.0 + noise
            } else {
                8.0 + noise
            }
        });
        let y = (0..n).map(|r| if r % 2 == 0 { 0.0 } else { 1.0 }).collect();
        (x, y)
    }

    #[test]
    fn fits_separable_data() {
        let (x, y) = clusters(100);
        let m = LogisticRegression::fit(&x, &y, &LogRegConfig::default()).unwrap();
        assert!(m.accuracy(&x, &y) > 0.99, "acc {}", m.accuracy(&x, &y));
        assert!(m.log_loss(&x, &y) < 0.3);
    }

    #[test]
    fn proba_bounds_and_monotonicity() {
        let (x, y) = clusters(60);
        let m = LogisticRegression::fit(&x, &y, &LogRegConfig::default()).unwrap();
        for p in m.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
        // Larger features push toward class 1.
        let lo = m.predict_proba_row(&[0.0, 0.0]);
        let hi = m.predict_proba_row(&[10.0, 10.0]);
        assert!(hi > lo);
    }

    #[test]
    fn l2_shrinks_coefficients() {
        let (x, y) = clusters(80);
        let plain = LogisticRegression::fit(&x, &y, &LogRegConfig::default()).unwrap();
        let reg =
            LogisticRegression::fit(&x, &y, &LogRegConfig { l2: 1.0, ..LogRegConfig::default() })
                .unwrap();
        assert!(ops::norm2(&reg.coefficients) < ops::norm2(&plain.coefficients));
    }

    #[test]
    fn validation_errors() {
        let (x, y) = clusters(10);
        assert!(matches!(
            LogisticRegression::fit(&x, &y[..4], &LogRegConfig::default()),
            Err(MlError::Shape(_))
        ));
        let bad: Vec<f64> = vec![0.0, 2.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        assert!(matches!(
            LogisticRegression::fit(&x, &bad, &LogRegConfig::default()),
            Err(MlError::BadParam(_))
        ));
        let one_class = vec![1.0; 10];
        assert!(matches!(
            LogisticRegression::fit(&x, &one_class, &LogRegConfig::default()),
            Err(MlError::Degenerate(_))
        ));
    }

    #[test]
    fn log_loss_better_than_chance() {
        let (x, y) = clusters(100);
        let m = LogisticRegression::fit(&x, &y, &LogRegConfig::default()).unwrap();
        // Chance log loss is ln(2) ≈ 0.693.
        assert!(m.log_loss(&x, &y) < 0.5);
    }

    #[test]
    fn hard_predictions_binary() {
        let (x, y) = clusters(40);
        let m = LogisticRegression::fit(&x, &y, &LogRegConfig::default()).unwrap();
        for p in m.predict(&x) {
            assert!(p == 0.0 || p == 1.0);
        }
    }
}
