//! Random forest: bootstrap-aggregated CART trees with per-tree feature
//! subsampling.

use crate::tree::{DecisionTree, TreeConfig};
use crate::MlError;
use dm_matrix::Dense;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyperparameters for forest induction.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree CART settings.
    pub tree: TreeConfig,
    /// Features sampled per tree (0 means `sqrt(d)`, the classification
    /// default).
    pub max_features: usize,
    /// Bootstrap/subsample seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { num_trees: 25, tree: TreeConfig::default(), max_features: 0, seed: 42 }
    }
}

/// A fitted random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<(DecisionTree, Vec<usize>)>, // (tree, feature subset)
}

impl RandomForest {
    /// Fit a forest on features `x` and integer labels `y`.
    ///
    /// # Errors
    /// Propagates shape errors from tree induction;
    /// [`MlError::BadParam`] when `num_trees == 0`.
    pub fn fit(x: &Dense, y: &[i64], cfg: &ForestConfig) -> Result<Self, MlError> {
        if cfg.num_trees == 0 {
            return Err(MlError::BadParam("num_trees must be positive".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!("{} rows vs {} labels", x.rows(), y.len())));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::Shape("empty training data".into()));
        }
        let d = x.cols();
        let m = if cfg.max_features == 0 {
            ((d as f64).sqrt().round() as usize).clamp(1, d)
        } else {
            cfg.max_features.min(d)
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = x.rows();
        let mut trees = Vec::with_capacity(cfg.num_trees);
        for _ in 0..cfg.num_trees {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // Sample features without replacement.
            let mut feats: Vec<usize> = (0..d).collect();
            for i in 0..m {
                let j = rng.gen_range(i..d);
                feats.swap(i, j);
            }
            feats.truncate(m);
            feats.sort_unstable();

            let xb = x.select_rows(&rows).select_cols(&feats);
            let yb: Vec<i64> = rows.iter().map(|&r| y[r]).collect();
            let tree = DecisionTree::fit(&xb, &yb, &cfg.tree)?;
            trees.push((tree, feats));
        }
        Ok(RandomForest { trees })
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Majority-vote prediction for one row (ties break toward the smaller
    /// label for determinism).
    pub fn predict_row(&self, row: &[f64]) -> i64 {
        let mut votes: std::collections::BTreeMap<i64, usize> = std::collections::BTreeMap::new();
        let mut buf = Vec::new();
        for (tree, feats) in &self.trees {
            buf.clear();
            buf.extend(feats.iter().map(|&f| row[f]));
            *votes.entry(tree.predict_row(&buf)).or_insert(0) += 1;
        }
        votes
            .into_iter()
            .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
            .expect("at least one tree")
            .0
    }

    /// Predictions for every row of `x`.
    pub fn predict(&self, x: &Dense) -> Vec<i64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Classification accuracy.
    pub fn accuracy(&self, x: &Dense, y: &[i64]) -> f64 {
        let correct = self.predict(x).iter().zip(y).filter(|(p, t)| p == t).count();
        correct as f64 / y.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64) -> (Dense, Vec<i64>) {
        // Blobs with wide spread: single trees overfit, forests smooth.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Dense::zeros(200, 4);
        let mut y = Vec::with_capacity(200);
        for r in 0..200 {
            let c = r % 2;
            y.push(c as i64);
            for j in 0..4 {
                let center = if c == 0 { 0.0 } else { 2.0 };
                x.set(r, j, center + rng.gen_range(-1.5..1.5));
            }
        }
        (x, y)
    }

    #[test]
    fn forest_fits_separable_data() {
        let (x, y) = noisy_blobs(1);
        let f = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert_eq!(f.num_trees(), 25);
        assert!(f.accuracy(&x, &y) > 0.9, "acc {}", f.accuracy(&x, &y));
    }

    #[test]
    fn forest_generalizes_at_least_as_well_as_stump() {
        let (x, y) = noisy_blobs(2);
        let (xt, yt) = noisy_blobs(3); // fresh draw = held-out set
        let stump =
            DecisionTree::fit(&x, &y, &TreeConfig { max_depth: 1, ..Default::default() }).unwrap();
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        let stump_acc =
            stump.predict(&xt).iter().zip(&yt).filter(|(p, t)| p == t).count() as f64 / 200.0;
        assert!(
            forest.accuracy(&xt, &yt) >= stump_acc - 0.02,
            "forest {} vs stump {stump_acc}",
            forest.accuracy(&xt, &yt)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = noisy_blobs(4);
        let a = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        let b = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn max_features_controls_subspace() {
        let (x, y) = noisy_blobs(5);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestConfig { max_features: 2, num_trees: 5, ..Default::default() },
        )
        .unwrap();
        for (_, feats) in &f.trees {
            assert_eq!(feats.len(), 2);
            assert!(feats.windows(2).all(|w| w[0] < w[1]), "sorted unique features");
        }
    }

    #[test]
    fn validation() {
        let (x, y) = noisy_blobs(6);
        assert!(RandomForest::fit(&x, &y, &ForestConfig { num_trees: 0, ..Default::default() })
            .is_err());
        assert!(RandomForest::fit(&x, &y[..10], &ForestConfig::default()).is_err());
    }

    #[test]
    fn single_tree_forest_close_to_plain_tree() {
        // One tree with all features, but bootstrap rows: same family of
        // decision boundaries; training accuracy should be high either way.
        let (x, y) = noisy_blobs(7);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestConfig { num_trees: 1, max_features: 4, ..Default::default() },
        )
        .unwrap();
        assert!(f.accuracy(&x, &y) > 0.85);
    }
}
