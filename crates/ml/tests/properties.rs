//! Property-based tests on the learners: solver agreement, invariance, and
//! recovery guarantees on well-posed random problems.

use dm_matrix::{ops, Dense};
use dm_ml::glm::Family;
use dm_ml::kmeans::{self, KMeansConfig};
use dm_ml::linreg::{LinearRegression, Solver};
use dm_ml::naive_bayes::GaussianNb;
use dm_ml::tree::{DecisionTree, TreeConfig};
use proptest::prelude::*;

/// Well-conditioned regression data: random features in [-1,1], labels from a
/// random linear truth (noiseless).
fn regression_data() -> impl Strategy<Value = (Dense, Vec<f64>, Vec<f64>)> {
    (10usize..60, 1usize..5).prop_flat_map(|(n, d)| {
        let feats = proptest::collection::vec(-1.0..1.0f64, n * d);
        let truth = proptest::collection::vec(-2.0..2.0f64, d + 1);
        (Just((n, d)), feats, truth).prop_map(|((n, d), f, t)| {
            let x = Dense::from_vec(n, d, f).unwrap();
            let y: Vec<f64> = (0..n).map(|r| t[0] + ops::dot(x.row(r), &t[1..])).collect();
            (x, y, t)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn normal_equations_and_cg_agree((x, y, _) in regression_data()) {
        // Ridge keeps both solvers well-posed even on near-degenerate draws.
        let ne = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.01);
        let cg = LinearRegression::fit(&x, &y, Solver::ConjugateGradient, 0.01);
        if let (Ok(ne), Ok(cg)) = (ne, cg) {
            prop_assert!((ne.intercept - cg.intercept).abs() < 1e-4);
            for (a, b) in ne.coefficients.iter().zip(&cg.coefficients) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn noiseless_fit_predicts_exactly((x, y, _) in regression_data()) {
        if let Ok(m) = LinearRegression::fit(&x, &y, Solver::NormalEquations, 0.0) {
            prop_assert!(m.mse(&x, &y) < 1e-8, "mse {}", m.mse(&x, &y));
        }
    }

    #[test]
    fn glm_gaussian_gradient_vanishes_at_truth((x, y, t) in regression_data()) {
        // At the generating weights, the (unregularized) gradient is zero.
        let xa = Dense::filled(x.rows(), 1, 1.0).hcat(&x);
        let eta = ops::gemv(&xa, &t);
        let resid: Vec<f64> = eta.iter().zip(&y).map(|(e, yv)| Family::Gaussian.mean(*e) - yv).collect();
        let grad = ops::tmv(&xa, &resid);
        prop_assert!(ops::norm2(&grad) < 1e-7 * (1.0 + ops::norm2(&t)));
    }

    #[test]
    fn kmeans_inertia_nonincreasing_in_k(seed in 0u64..500) {
        let (x, _) = dm_data::labeled::blobs(60, 2, 3, 1.0, seed);
        let mut prev = f64::INFINITY;
        for k in [1usize, 2, 3] {
            let m = kmeans::fit(&x, &KMeansConfig { k, seed, ..Default::default() }).unwrap();
            prop_assert!(m.inertia <= prev + 1e-6, "k={k}: {} > {prev}", m.inertia);
            prev = m.inertia;
        }
    }

    #[test]
    fn kmeans_labels_are_nearest_centroids(seed in 0u64..200) {
        let (x, _) = dm_data::labeled::blobs(40, 2, 2, 2.0, seed);
        let m = kmeans::fit(&x, &KMeansConfig { k: 2, seed, ..Default::default() }).unwrap();
        // Fixed point: predicting the training data reproduces the labels.
        prop_assert_eq!(m.predict(&x), m.labels);
    }

    #[test]
    fn gaussian_nb_is_shift_invariant(seed in 0u64..200, shift in -50.0..50.0f64) {
        let (x, y) = dm_data::labeled::blobs(60, 3, 3, 1.0, seed);
        let shifted = x.map(|v| v + shift);
        let m1 = GaussianNb::fit(&x, &y).unwrap();
        let m2 = GaussianNb::fit(&shifted, &y).unwrap();
        prop_assert_eq!(m1.predict(&x), m2.predict(&shifted));
    }

    #[test]
    fn tree_training_accuracy_nondecreasing_in_depth(seed in 0u64..100) {
        let (x, y) = dm_data::labeled::blobs(60, 2, 3, 4.0, seed);
        let mut prev = 0.0;
        for depth in [1usize, 2, 4, 8] {
            let t = DecisionTree::fit(&x, &y, &TreeConfig { max_depth: depth, ..Default::default() }).unwrap();
            let acc = t.accuracy(&x, &y);
            prop_assert!(acc >= prev - 1e-9, "depth {depth}: {acc} < {prev}");
            prev = acc;
        }
    }

    #[test]
    fn tree_predictions_are_seen_labels(seed in 0u64..100) {
        let (x, y) = dm_data::labeled::blobs(40, 2, 3, 2.0, seed);
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        let labels: std::collections::HashSet<i64> = y.iter().copied().collect();
        for p in t.predict(&x) {
            prop_assert!(labels.contains(&p));
        }
    }
}
