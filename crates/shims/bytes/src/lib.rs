//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply cloneable, sliceable view over shared immutable bytes
//! (`Arc<[u8]>` plus a window); `BytesMut` is a growable builder that freezes
//! into `Bytes`. The `Buf`/`BufMut` traits carry the little-endian accessors
//! the serializers in this workspace rely on. Semantics match upstream for
//! this subset: reads consume from the front, `len`/`Deref` reflect the
//! remaining window, and `slice` shares storage without copying.

#![warn(missing_docs)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Shared immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static byte slice (copied once; this shim has no zero-copy
    /// static storage, which no caller observes).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same storage. Bounds are relative to the
    /// current view.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copy the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

/// Growable byte builder that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(bytes: &[u8]) -> Self {
        BytesMut { data: bytes.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

macro_rules! get_le {
    ($($name:ident -> $t:ty),* $(,)?) => {$(
        /// Read a little-endian value from the front, consuming it.
        ///
        /// # Panics
        /// Panics when fewer bytes remain than the value needs.
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            self.copy_to_slice(&mut raw);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// Sequential reads that consume from the front of a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy bytes into `dst`, consuming them.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Detach the first `n` bytes as an owned [`Bytes`], consuming them.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.remaining() >= n, "buffer underflow");
        let out = Bytes::from(&self.chunk()[..n]);
        self.advance(n);
        out
    }

    /// Read one byte.
    ///
    /// # Panics
    /// Panics when empty.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_f64_le -> f64,
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

macro_rules! put_le {
    ($($name:ident($t:ty)),* $(,)?) => {$(
        /// Append a value in little-endian byte order.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// Sequential appends to the back of a buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_f64_le(f64),
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(258);
        b.put_u32_le(70_000);
        b.put_u64_le(u64::MAX - 1);
        b.put_f64_le(-0.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 258);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), -0.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let inner = mid.slice(1..);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(b.len(), 6, "parent untouched");
    }

    #[test]
    fn reads_consume_window() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[2, 3, 4]);
        let taken = b.copy_to_bytes(2);
        assert_eq!(&taken[..], &[2, 3]);
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    fn equality_ignores_storage() {
        let a = Bytes::from(vec![9, 9, 1, 2]).slice(2..);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, Bytes::from(vec![1]));
    }

    #[test]
    fn bytes_mut_is_indexable() {
        let mut m = BytesMut::from(&[1u8, 2, 3, 4][..]);
        m[1..3].copy_from_slice(&[8, 9]);
        assert_eq!(m.freeze(), Bytes::from(vec![1, 8, 9, 4]));
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
