//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of `rand` it actually uses: a seedable RNG (`rngs::StdRng`),
//! `Rng::gen_range`/`gen_bool`, and `seq::SliceRandom::shuffle`. The generator
//! is xoshiro256** seeded through SplitMix64 — deterministic across platforms,
//! which is all the experiments and tests require. Streams differ from the
//! upstream ChaCha-based `StdRng`; callers only rely on statistical quality
//! and reproducibility for a fixed seed, never on exact values.

#![warn(missing_docs)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from range-like argument types.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing RNG trait.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.next_f64() < p
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // 128-bit multiply-shift maps 64 random bits onto the span
                // with negligible bias for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = rng.next_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** over a SplitMix64-expanded
    /// seed. Fast, passes BigCrush, and fully deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn int_range_reaches_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
