//! Offline stand-in for `criterion`.
//!
//! Provides the group/`bench_function` API surface the `dm-bench` targets
//! use, backed by a simple timing loop: each benchmark runs a short warm-up,
//! then samples the closure until the measurement budget is spent, and prints
//! min/median/mean per iteration. No statistical analysis, plots, or result
//! persistence — the bench targets here exist to show qualitative shapes
//! (which representation wins, how costs scale), not CI-grade regressions.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver; hands out [`BenchmarkGroup`]s.
///
/// Like real criterion, `Default::default()` sniffs the process arguments
/// for `--test` (as passed by `cargo bench -- --test`): in test mode every
/// benchmark body runs exactly once with no warm-up or sampling, turning the
/// whole bench suite into a fast CI smoke check.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: std::env::args().skip(1).any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Force smoke-test mode on or off, overriding argument sniffing.
    pub fn with_test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            test_mode: self.test_mode,
        }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(id, f);
        self
    }
}

/// A named set of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Number of timed samples to collect (upper bound; the measurement
    /// budget may cut it short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total budget for timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time `f`'s `Bencher::iter` body and print a one-line summary.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();

        if self.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("bench {}/{:<28} ... ok (test mode, 1 iteration)", self.name, id);
            return self;
        }

        let warm_up_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_until {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let budget_until = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            if Instant::now() >= budget_until {
                break;
            }
        }

        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples.first().copied().unwrap_or(0.0);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "bench {}/{:<28} min {:>12} median {:>12} mean {:>12} ({} samples)",
            self.name,
            id,
            fmt_secs(min),
            fmt_secs(median),
            fmt_secs(mean),
            samples.len()
        );
        self
    }

    /// End the group (printing happens per-benchmark; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Passed to the benchmark closure; `iter` times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the elapsed wall time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0, "bench closure must actually run");
    }

    #[test]
    fn test_mode_runs_body_exactly_once() {
        let mut c = Criterion::default().with_test_mode(true);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode must skip warm-up and sampling");
    }

    #[test]
    fn macros_compose() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, target);
        benches();
    }
}
