//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` backed by `std::sync`
//! with parking_lot's non-poisoning guard API (`lock()` returns the guard
//! directly). A poisoned std lock — a thread panicked while holding it — is
//! treated as still-consistent and re-entered, matching parking_lot's
//! semantics of not tracking poisoning at all.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
