//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's test suites
//! use: the `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`/
//! `boxed`, range and tuple strategies, `Just`, weighted `prop_oneof!`, and
//! `collection::vec`. Differences from upstream, none of which the suites
//! depend on:
//!
//! * **No shrinking.** A failing case reports the generated value via the
//!   panic message only.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of the
//!   test function's name, so failures reproduce exactly across runs.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of returning
//!   `Err`, which is equivalent under `#[test]`.

#![warn(missing_docs)]

/// Core [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            let intermediate = self.source.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    /// Weighted choice between strategies yielding the same value type.
    /// Backs the `prop_oneof!` macro.
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// Build from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// Panics when `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs at least one positive weight");
            OneOf { arms, total_weight }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf { arms: self.arms.clone(), total_weight: self.total_weight }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, strat) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights summed to total_weight");
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Strategies for collections (`vec`, sized containers).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose elements come from
    /// `element` and whose length comes from `size` (an exact `usize` or a
    /// half-open range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The runner driving case generation, and its configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test driver owning the deterministic RNG.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Seed from the test's name so each test gets a distinct but
        /// reproducible stream.
        pub fn new(test_name: &str) -> Self {
            // FNV-1a: stable across runs and platforms, unlike DefaultHasher.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRunner { rng: StdRng::seed_from_u64(h) }
        }

        /// The RNG strategies draw from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// Per-suite knobs accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the full-workspace suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Assert inside a proptest body. Panics (fails the test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Weighted (or uniform) choice between strategies producing the same type.
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a, 1 => b]` picks
/// `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `cases` times with fresh generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal tt-muncher behind [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
            for _case in 0..config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), runner.rng()),)+
                );
                // Upstream bodies may `return Ok(())` to skip a case, so run
                // the body in a Result-returning closure. Assertion macros
                // panic directly, so Err never actually occurs.
                #[allow(clippy::redundant_closure_call)]
                let case_result: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                case_result.expect("proptest case returned Err");
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

/// One-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut runner = TestRunner::new("ranges_and_tuples");
        let strat = (1usize..5, -1.0..1.0f64, 0u32..=3);
        for _ in 0..500 {
            let (a, b, c) = strat.generate(runner.rng());
            assert!((1..5).contains(&a));
            assert!((-1.0..1.0).contains(&b));
            assert!(c <= 3);
        }
    }

    #[test]
    fn map_flat_map_and_boxed_compose() {
        let mut runner = TestRunner::new("map_flat_map");
        let strat = (2usize..6)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0.0..1.0f64, n)))
            .prop_map(|(n, v)| (n, v.len()))
            .boxed();
        for _ in 0..200 {
            let (n, len) = strat.generate(runner.rng());
            assert_eq!(n, len);
            assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn oneof_respects_weights_and_reaches_all_arms() {
        let mut runner = TestRunner::new("oneof");
        let strat = prop_oneof![3 => Just(0u8), 1 => Just(1u8)];
        let ones = (0..4000).filter(|_| strat.generate(runner.rng()) == 1).count();
        let frac = ones as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "{frac}");

        let uniform = prop_oneof![Just('a'), Just('b'), Just('c')];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(uniform.generate(runner.rng()));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut runner = TestRunner::new("vec_sizes");
        let exact = crate::collection::vec(0..10i32, 7usize);
        assert_eq!(exact.generate(runner.rng()).len(), 7);
        let ranged = crate::collection::vec(0..10i32, 1..4);
        for _ in 0..200 {
            let len = ranged.generate(runner.rng()).len();
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn same_name_reproduces_same_stream() {
        let mut a = TestRunner::new("stable");
        let mut b = TestRunner::new("stable");
        let strat = crate::collection::vec(0u64..1_000_000, 10usize);
        assert_eq!(strat.generate(a.rng()), strat.generate(b.rng()));
    }

    // The macro itself, end to end: generated bindings, config, patterns.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns(x in 0usize..10, (a, b) in (0i32..5, 5i32..10)) {
            prop_assert!(x < 10);
            prop_assert!(a < b, "{a} vs {b}");
            prop_assert_eq!(a + b, b + a);
        }
    }
}
