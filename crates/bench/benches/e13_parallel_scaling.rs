//! E13 — strong-scaling sweep over the dm-par execution layer: dense gemm,
//! compressed matrix-vector kernels, and hyper-parameter grid search at
//! degrees 1/2/4/8.
//!
//! The canonical shape: row-partitioned gemm and segment-partitioned
//! compressed gemv scale near-linearly until the memory bus saturates, while
//! the coarse-grained grid search scales with the number of independent
//! configurations. Every parallel kernel is bit-identical to its serial
//! counterpart, so the sweep measures pure scheduling + partitioning cost.
//!
//! The gemm side length defaults to 2048 (17.2 GFlop per iteration) and can
//! be lowered for constrained machines via `DMML_BENCH_GEMM_N`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dm_compress::{planner::CompressionConfig, CompressedMatrix};
use dm_matrix::{ops, par, Dense};
use dm_ml::linreg::{LinearRegression, Solver};
use dm_modelsel::search::{grid_search, grid_search_par, ParamSpace, Params};

/// Thread degrees swept by every benchmark in this group.
const DEGREES: [usize; 4] = [1, 2, 4, 8];

/// Rows of the compressed matrix-vector workload.
const CMV_ROWS: usize = 200_000;
/// Columns of the compressed matrix-vector workload.
const CMV_COLS: usize = 8;

fn gemm_n() -> usize {
    std::env::var("DMML_BENCH_GEMM_N").ok().and_then(|s| s.parse().ok()).unwrap_or(2048)
}

fn bench(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = gemm_n();
    println!("\n=== E13: parallel scaling (degrees {DEGREES:?}, {cores} core(s) available) ===");
    println!(
        "gemm {n}x{n}x{n} ({:.1} GFlop/iter) | compressed mv {CMV_ROWS}x{CMV_COLS} | grid 4x4",
        2.0 * (n as f64).powi(3) / 1e9
    );

    let a = Dense::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 23) as f64 * 0.05 - 0.55);
    let b = Dense::from_fn(n, n, |r, c| ((r * 7 + c * 13) % 19) as f64 * 0.07 - 0.63);

    let m = dm_data::matgen::clustered(CMV_ROWS, CMV_COLS, 10, 512, 7);
    let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
    let v: Vec<f64> = (0..CMV_COLS).map(|i| i as f64 * 0.3 - 1.0).collect();
    let u: Vec<f64> = (0..CMV_ROWS).map(|i| ((i % 17) as f64) * 0.1 - 0.8).collect();

    // Grid-search workload: ridge regression via the normal equations on a
    // modest design matrix; one full fit per configuration.
    let d = dm_data::labeled::regression(4000, 12, 0.1, 33);
    let space =
        ParamSpace::new().grid("l2", &[0.0, 0.001, 0.01, 0.1]).grid("scale", &[0.5, 1.0, 2.0, 4.0]);
    let trainer = |p: &Params, _budget: f64| -> f64 {
        let m = LinearRegression::fit(&d.x, &d.y, Solver::NormalEquations, p.get("l2"))
            .expect("ridge fit");
        -m.mse(&d.x, &d.y) * p.get("scale")
    };

    // Bit-identity sanity: every parallel kernel must reproduce the serial
    // result exactly before we bother timing it.
    let g1 = par::gemm(&a, &b, 1);
    let mv1 = cm.gemv_with(&v, 1);
    let vm1 = cm.vecmat_with(&u, 1);
    let s1 = grid_search(&space, trainer);
    for deg in DEGREES {
        assert_eq!(par::gemm(&a, &b, deg).data(), g1.data(), "gemm degree {deg}");
        assert_eq!(cm.gemv_with(&v, deg), mv1, "compressed gemv degree {deg}");
        assert_eq!(cm.vecmat_with(&u, deg), vm1, "compressed vecmat degree {deg}");
        let sd = grid_search_par(&space, deg, trainer);
        assert_eq!(sd.best_score.to_bits(), s1.best_score.to_bits(), "grid degree {deg}");
    }

    let mut g = c.benchmark_group("e13_parallel_scaling");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));
    for deg in DEGREES {
        g.bench_function(format!("gemm_{n}_t{deg}"), |bch| bch.iter(|| par::gemm(&a, &b, deg)));
    }
    for deg in DEGREES {
        g.bench_function(format!("gemv_compressed_t{deg}"), |bch| {
            bch.iter(|| cm.gemv_with(&v, deg))
        });
    }
    for deg in DEGREES {
        g.bench_function(format!("vecmat_compressed_t{deg}"), |bch| {
            bch.iter(|| cm.vecmat_with(&u, deg))
        });
    }
    for deg in DEGREES {
        g.bench_function(format!("grid_search_t{deg}"), |bch| {
            bch.iter(|| grid_search_par(&space, deg, trainer))
        });
    }
    // Dense reference points so the compressed numbers are anchored.
    g.bench_function("gemv_dense_serial", |bch| bch.iter(|| ops::gemv(&m, &v)));
    g.bench_function("vecmat_dense_serial", |bch| bch.iter(|| ops::gevm(&u, &m)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
