//! E17 — multi-tenant serving: plan-cache hit rate and tail latency vs
//! tenant count and micro-batch deadline.
//!
//! Each benchmark round drives a live [`ScoringServer`] over loopback TCP
//! with K concurrent tenant connections, every tenant scoring the same
//! program family so the plan cache carries the steady state. The sweep
//! shows the two serving-side levers:
//!
//! * **tenant count** — request latency vs. concurrency under one shared
//!   plan cache, memory ledger, and stats registry;
//! * **micro-batch deadline** — vector scorings (`X %*% v`) marked
//!   batchable coalesce into one gemm; the deadline trades p99 latency
//!   (leaders wait for followers) against per-request planning/dispatch
//!   amortization. Deadline 0 disables coalescing for the baseline.
//!
//! After the timed sweep the plan-cache hit rate and the server-side
//! p50/p99 latency histograms print per configuration, mirroring what a
//! production `/metrics` scrape would show.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_obs::StatsRegistry;
use dm_serve::{Request, Response, ScoringClient, ScoringServer, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

/// Concurrent tenants swept by the latency benchmark.
const TENANTS: [usize; 3] = [1, 4, 8];
/// Micro-batch deadlines (ms) swept by the batching benchmark; 0 disables.
const DEADLINES_MS: [u64; 3] = [0, 1, 5];

const N: usize = 96;
const D: usize = 8;

fn x_data(seq: usize) -> Vec<f64> {
    (0..N * D).map(|i| ((i * 13 + seq * 7) % 23) as f64 * 0.31 - 2.0).collect()
}

fn v_data(seq: usize) -> Vec<f64> {
    (0..D).map(|i| ((i * 5 + seq) % 11) as f64 * 0.17 - 0.6).collect()
}

fn score_round(addr: std::net::SocketAddr, tenants: usize, batch: bool) {
    let handles: Vec<_> = (0..tenants)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = ScoringClient::connect(addr).expect("connect");
                for seq in 0..4usize {
                    let mut req = Request::score(&format!("tenant-{t}"), "X %*% v")
                        .matrix("X", N, D, x_data(seq))
                        .matrix("v", D, 1, v_data(seq));
                    if batch {
                        req = req.batched();
                    }
                    match c.request(&req).expect("request") {
                        Response::Score { .. } => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }
}

fn start(deadline_ms: u64) -> (ScoringServer, Arc<StatsRegistry>) {
    let registry = Arc::new(StatsRegistry::new());
    let mut cfg = ServeConfig::for_tests();
    cfg.workers = 8;
    cfg.batch_deadline = Duration::from_millis(deadline_ms);
    cfg.batch_max = if deadline_ms == 0 { 1 } else { 8 };
    let server = ScoringServer::start(cfg, Arc::clone(&registry)).expect("bind");
    (server, registry)
}

fn report(tag: &str, server: &ScoringServer, registry: &StatsRegistry) {
    let (hits, misses, _) = server.plan_cache_stats();
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    let snap = registry.report();
    let (p50, p99) = snap
        .histogram("serve.latency_ns")
        .map(|h| (h.quantile(0.5), h.quantile(0.99)))
        .unwrap_or((0, 0));
    println!(
        "e17 {tag}: plan-cache hit rate {:.3} ({hits} hits / {misses} misses), \
         server p50 {:.1} us, p99 {:.1} us",
        rate,
        p50 as f64 / 1e3,
        p99 as f64 / 1e3
    );
}

fn bench(c: &mut Criterion) {
    println!("\n=== E17: multi-tenant serving ({N}x{D} scoring, 4 requests/tenant/round) ===");

    let mut g = c.benchmark_group("e17_serving");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));

    // Tenant-count sweep, no batching: shared plan cache under concurrency.
    for tenants in TENANTS {
        let (server, registry) = start(0);
        let addr = server.addr();
        score_round(addr, tenants, false); // warm the plan cache
        g.bench_function(format!("score_round_t{tenants}"), |b| {
            b.iter(|| score_round(addr, tenants, false))
        });
        report(&format!("tenants={tenants}"), &server, &registry);
        server.shutdown();
    }

    // Deadline sweep, 4 batchable tenants: latency cost of coalescing.
    for ms in DEADLINES_MS {
        let (server, registry) = start(ms);
        let addr = server.addr();
        score_round(addr, 4, true);
        g.bench_function(format!("batched_round_d{ms}ms"), |b| {
            b.iter(|| score_round(addr, 4, true))
        });
        let flushes = registry.report().counter("serve.batch.flushes").unwrap_or(0);
        let coalesced = registry.report().counter("serve.batch.batched_requests").unwrap_or(0);
        report(
            &format!("deadline={ms}ms flushes={flushes} coalesced={coalesced}"),
            &server,
            &registry,
        );
        server.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
