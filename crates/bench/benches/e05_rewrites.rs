//! E5 — logical rewrite wins: matrix-chain reordering, crossprod fusion, and
//! sum-of-squares fusion, measured both in flops (deterministic) and wall
//! time.
//!
//! The canonical shape: chain reordering turns an O(n·m·n) plan into
//! O(n·m) when a vector terminates the chain; the fused ops roughly halve
//! the work of their unfused forms.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_lang::exec::{Env, Executor};
use dm_lang::parser;
use dm_lang::rewrite::optimize;
use dm_lang::size::InputSizes;
use dm_matrix::{Dense, Matrix};

const N: usize = 2000;
const K: usize = 40;

fn setup() -> (Env, InputSizes) {
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(dm_data::matgen::dense_uniform(N, K, -1.0, 1.0, 5)));
    env.bind("Y", Matrix::Dense(dm_data::matgen::dense_uniform(K, N, -1.0, 1.0, 6)));
    let u: Vec<f64> = (0..N).map(|i| (i as f64) * 1e-4).collect();
    env.bind("u", Matrix::Dense(Dense::column(&u)));
    let mut sizes = InputSizes::new();
    sizes.declare("X", N, K, 1.0);
    sizes.declare("Y", K, N, 1.0);
    sizes.declare("u", N, 1, 1.0);
    (env, sizes)
}

const CASES: [(&str, &str); 3] = [
    ("mmchain", "X %*% Y %*% u"),
    ("crossprod", "sum(t(X) %*% X)"),
    ("sumsq", "sum(X * X) + sum(X * X)"),
];

fn print_table(env: &Env, sizes: &InputSizes) {
    println!("\n=== E5: rewrite flop reduction (n={N}, k={K}) ===");
    println!(
        "{:<12} {:>14} {:>14} {:>9} {:>10}",
        "expression", "naive-flops", "opt-flops", "ratio", "rewrites"
    );
    for (name, src) in CASES {
        let (g, root) = parser::parse(src).expect("parses");
        let mut naive = Executor::new(&g);
        let nv = naive.eval(root, env).expect("naive runs");
        let (og, oroot, stats) = optimize(&g, root, sizes).expect("optimizes");
        let mut opt = Executor::new(&og);
        let ov = opt.eval(oroot, env).expect("optimized runs");
        // Results must agree.
        match (nv.as_scalar(), ov.as_scalar()) {
            (Some(a), Some(b)) => assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs())),
            _ => {
                let (a, b) = (nv.as_dense().unwrap(), ov.as_dense().unwrap());
                assert!(a.approx_eq(&b, 1e-6));
            }
        }
        println!(
            "{:<12} {:>14} {:>14} {:>8.1}x {:>10}",
            name,
            naive.stats().flops,
            opt.stats().flops,
            naive.stats().flops as f64 / opt.stats().flops.max(1) as f64,
            stats.total()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let (env, sizes) = setup();
    print_table(&env, &sizes);

    let mut g = c.benchmark_group("e05_rewrites");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, src) in CASES {
        let (graph, root) = parser::parse(src).expect("parses");
        let (og, oroot, _) = optimize(&graph, root, &sizes).expect("optimizes");
        g.bench_function(format!("{name}_naive"), |b| {
            b.iter(|| {
                let mut ex = Executor::new(&graph);
                ex.eval(root, &env).expect("runs")
            })
        });
        g.bench_function(format!("{name}_optimized"), |b| {
            b.iter(|| {
                let mut ex = Executor::new(&og);
                ex.eval(oroot, &env).expect("runs")
            })
        });
        // Tracing overhead probe: the same optimized plan with per-node span
        // collection enabled (in-memory only — `DMML_TRACE` export is a
        // diagnosis mode and rewrites the trace file on every executor drop,
        // so it must never wrap a benchmark loop). Compare `_traced` against
        // `_optimized` to read the collection overhead directly.
        if name == "mmchain" {
            g.bench_function(format!("{name}_traced"), |b| {
                b.iter(|| {
                    let mut ex = Executor::new(&og).traced();
                    ex.eval(oroot, &env).expect("runs")
                });
                dm_obs::trace::set_enabled(false);
                dm_obs::trace::clear();
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
