//! E1 — CLA compression ratios by data structure, with a co-coding ablation.
//!
//! Regenerates the canonical compression-ratio table: low-cardinality and
//! clustered data compress by an order of magnitude, correlated columns gain
//! further from co-coding, and incompressible random data falls back to ~1x.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_compress::{planner::CompressionConfig, CompressedMatrix};
use dm_matrix::Dense;

const N: usize = 50_000;
const D: usize = 6;

fn datasets() -> Vec<(&'static str, Dense)> {
    vec![
        ("dense-random", dm_data::matgen::dense_uniform(N, D, -1.0, 1.0, 1)),
        ("low-card-8", dm_data::matgen::low_cardinality(N, D, 8, 2)),
        ("clustered", dm_data::matgen::clustered(N, D, 8, 1024, 3)),
        ("sparse-1pct", dm_data::matgen::sparse_uniform(N, D, 0.01, 4)),
        ("correlated", dm_data::matgen::correlated(N, D, 16, 5)),
    ]
}

fn print_table() {
    println!("\n=== E1: compression ratio (uncompressed bytes / compressed bytes) ===");
    println!("{:<14} {:>12} {:>12} {:>14}", "dataset", "cocode-on", "cocode-off", "plan-groups");
    for (name, m) in datasets() {
        let on = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let off = CompressedMatrix::compress(
            &m,
            &CompressionConfig { cocode: false, ..CompressionConfig::default() },
        );
        println!(
            "{:<14} {:>11.1}x {:>11.1}x {:>14}",
            name,
            on.compression_ratio(),
            off.compression_ratio(),
            on.groups().len()
        );
        // Shape assertions so a regression fails the harness loudly.
        assert!(on.decompress().approx_eq(&m, 0.0), "lossless");
    }
    println!();
}

/// Ablation: how much does the planner's sample size matter? Compare the
/// compressed size achieved when planning from 1%, 5%, and 25% samples
/// against planning from the full data.
fn print_sampling_ablation() {
    println!("--- E1 ablation: planner sampling fraction (achieved bytes) ---");
    println!("{:<14} {:>10} {:>10} {:>10} {:>10}", "dataset", "1%", "5%", "25%", "100%");
    for (name, m) in datasets() {
        let sizes: Vec<usize> = [0.01, 0.05, 0.25, 1.0]
            .iter()
            .map(|&f| {
                let cfg = CompressionConfig {
                    sample_fraction: f,
                    min_sample_rows: 64,
                    ..CompressionConfig::default()
                };
                CompressedMatrix::compress(&m, &cfg).size_bytes()
            })
            .collect();
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10}",
            name, sizes[0], sizes[1], sizes[2], sizes[3]
        );
        // A 5% sample should land near the full-data plan: within 30%
        // relative, or within a few KiB absolute for plans that are already
        // tiny (where co-coding coin flips dominate the relative number).
        let abs = (sizes[1] as f64 - sizes[3] as f64).abs();
        let drift = abs / sizes[3] as f64;
        assert!(
            drift < 0.30 || abs < 4096.0,
            "{name}: 5% sample plan drifts {drift:.2} ({abs} bytes) from full plan"
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    print_sampling_ablation();
    let mut g = c.benchmark_group("e01_compress");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, m) in datasets() {
        g.bench_function(name, |b| {
            b.iter(|| CompressedMatrix::compress(&m, &CompressionConfig::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
