//! E2 — matrix-vector and vector-matrix multiply on compressed vs dense vs
//! CSR representations.
//!
//! The canonical shape: on compressible data, CLA kernels match or beat the
//! uncompressed kernels (pre-aggregation makes work proportional to
//! #distinct-tuples instead of n·d), while operating in a fraction of the
//! memory.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_compress::{planner::CompressionConfig, CompressedMatrix};
use dm_matrix::{ops, sparse, Csr};

const N: usize = 100_000;
const D: usize = 8;

fn bench(c: &mut Criterion) {
    let m = dm_data::matgen::clustered(N, D, 10, 512, 7);
    let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
    let csr = Csr::from_dense(&m);
    let v: Vec<f64> = (0..D).map(|i| i as f64 * 0.3 - 1.0).collect();
    let u: Vec<f64> = (0..N).map(|i| ((i % 17) as f64) * 0.1 - 0.8).collect();

    println!("\n=== E2: representation sizes ({N}x{D} clustered matrix) ===");
    println!(
        "dense {} bytes | csr ~{} bytes | compressed {} bytes (ratio {:.1}x)",
        N * D * 8,
        csr.nnz() * 12 + (N + 1) * 8,
        cm.size_bytes(),
        cm.compression_ratio()
    );
    // Correctness across representations.
    let expect = ops::gemv(&m, &v);
    for (a, b) in cm.gemv(&v).iter().zip(&expect) {
        assert!((a - b).abs() < 1e-9);
    }

    let mut g = c.benchmark_group("e02_mv");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("gemv_dense", |b| b.iter(|| ops::gemv(&m, &v)));
    g.bench_function("gemv_csr", |b| b.iter(|| sparse::spmv(&csr, &v)));
    g.bench_function("gemv_compressed", |b| b.iter(|| cm.gemv(&v)));
    g.bench_function("vecmat_dense", |b| b.iter(|| ops::gevm(&u, &m)));
    g.bench_function("vecmat_compressed", |b| b.iter(|| cm.vecmat(&u)));
    g.bench_function("colsums_dense", |b| b.iter(|| ops::col_sums(&m)));
    g.bench_function("colsums_compressed", |b| b.iter(|| cm.col_sums()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
