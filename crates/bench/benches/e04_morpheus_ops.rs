//! E4 — normalized (pushed-through-the-join) linear algebra operator
//! speedups over the materialized baseline.
//!
//! The canonical per-operator shape: gemv/vecmat/rowsums win roughly by the
//! redundancy ratio; crossprod wins even more because the quadratic blocks
//! shrink from `n` rows to `n_dim` rows.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_factorized::{DimTable, NormalizedMatrix};
use dm_matrix::ops;

fn build() -> NormalizedMatrix {
    let d = dm_data::star::generate(&dm_data::star::StarConfig {
        fact_rows: 50_000,
        dim_rows: 200,
        fact_features: 2,
        dim_features: 20,
        noise: 0.0,
        seed: 31,
    });
    NormalizedMatrix::new(
        d.fact.clone(),
        vec![DimTable::new(d.dim.clone(), d.fk.clone()).expect("valid keys")],
    )
    .expect("valid schema")
}

fn print_table(nm: &NormalizedMatrix) {
    let x = nm.materialize();
    let w: Vec<f64> = (0..nm.cols()).map(|i| (i as f64) * 0.01 - 0.1).collect();
    let v: Vec<f64> = (0..nm.rows()).map(|i| ((i % 23) as f64) * 0.05).collect();

    println!(
        "\n=== E4: normalized vs materialized operators (redundancy {:.1}x) ===",
        nm.redundancy_ratio()
    );
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "operator", "normalized(ms)", "material.(ms)", "speedup"
    );
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "gemv",
            dm_bench::time_mean(10, || nm.gemv(&w)),
            dm_bench::time_mean(10, || ops::gemv(&x, &w)),
        ),
        (
            "vecmat",
            dm_bench::time_mean(10, || nm.vecmat(&v)),
            dm_bench::time_mean(10, || ops::gevm(&v, &x)),
        ),
        (
            "crossprod",
            dm_bench::time_mean(3, || nm.crossprod()),
            dm_bench::time_mean(3, || ops::crossprod(&x)),
        ),
        (
            "rowsums",
            dm_bench::time_mean(10, || nm.row_sums()),
            dm_bench::time_mean(10, || ops::row_sums(&x)),
        ),
        (
            "colsums",
            dm_bench::time_mean(10, || nm.col_sums()),
            dm_bench::time_mean(10, || ops::col_sums(&x)),
        ),
    ];
    for (name, tn, tm) in rows {
        println!("{name:>12} {:>14.3} {:>14.3} {:>8.1}x", tn * 1e3, tm * 1e3, tm / tn.max(1e-12));
    }
    // Correctness spot checks.
    assert!(nm.crossprod().approx_eq(&ops::crossprod(&x), 1e-6));
    println!();
}

fn bench(c: &mut Criterion) {
    let nm = build();
    print_table(&nm);
    let x = nm.materialize();
    let w: Vec<f64> = (0..nm.cols()).map(|i| (i as f64) * 0.01 - 0.1).collect();

    let mut g = c.benchmark_group("e04_morpheus");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("gemv_normalized", |b| b.iter(|| nm.gemv(&w)));
    g.bench_function("gemv_materialized", |b| b.iter(|| ops::gemv(&x, &w)));
    g.bench_function("crossprod_normalized", |b| b.iter(|| nm.crossprod()));
    g.bench_function("crossprod_materialized", |b| b.iter(|| ops::crossprod(&x)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
