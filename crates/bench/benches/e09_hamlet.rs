//! E9 — join avoidance: does dropping the KFK join (keeping only the
//! foreign key, dummy-coded) hurt accuracy?
//!
//! The canonical shape: at high tuple ratios (many training rows per FK
//! value) the FK-only model matches the joined model's held-out accuracy, so
//! the join can be safely avoided; at low tuple ratios the FK overfits and
//! the joined features win — exactly where the decision rules say KeepJoin.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_factorized::hamlet::{fk_one_hot, risk_rule, tuple_ratio_rule, Decision, JoinProfile};
use dm_ml::logreg::{LogRegConfig, LogisticRegression};

const FACT_ROWS: usize = 4000;
const DIM_FEATS: usize = 4;

struct Variant {
    x_train: dm_matrix::Dense,
    y_train: Vec<f64>,
    x_test: dm_matrix::Dense,
    y_test: Vec<f64>,
}

fn accuracy(v: &Variant) -> f64 {
    let cfg = LogRegConfig { learning_rate: 0.5, max_iter: 400, tol: 0.0, l2: 1e-3 };
    LogisticRegression::fit(&v.x_train, &v.y_train, &cfg)
        .map_or(0.5, |m| m.accuracy(&v.x_test, &v.y_test))
}

/// Build joined-features and FK-only variants for one FK cardinality.
fn build(dim_rows: usize, seed: u64) -> (Variant, Variant, JoinProfile) {
    let d = dm_data::star::generate(&dm_data::star::StarConfig {
        fact_rows: FACT_ROWS,
        dim_rows,
        fact_features: 2,
        dim_features: DIM_FEATS,
        noise: 0.0,
        seed,
    });
    let split = dm_pipeline::split::train_test_split(FACT_ROWS, 0.3, seed).expect("split");

    // Joined representation: fact features + dimension features.
    let nm = dm_factorized::NormalizedMatrix::new(
        d.fact.clone(),
        vec![dm_factorized::DimTable::new(d.dim.clone(), d.fk.clone()).expect("keys")],
    )
    .expect("schema");
    let joined = nm.materialize();

    // FK-only representation: fact features + one-hot FK.
    let fk_only = d.fact.hcat(&fk_one_hot(&d.fk, dim_rows));

    let mk = |x: &dm_matrix::Dense| Variant {
        x_train: x.select_rows(&split.train),
        y_train: split.train.iter().map(|&i| d.y_binary[i]).collect(),
        x_test: x.select_rows(&split.test),
        y_test: split.test.iter().map(|&i| d.y_binary[i]).collect(),
    };
    let profile = JoinProfile { fact_rows: split.train.len(), dim_rows, dim_features: DIM_FEATS };
    (mk(&joined), mk(&fk_only), profile)
}

fn print_table() {
    println!("\n=== E9: join avoidance across FK cardinality (n={FACT_ROWS}) ===");
    println!(
        "{:>9} {:>12} {:>11} {:>9} {:>14} {:>12}",
        "dim-rows", "tuple-ratio", "joined-acc", "fk-acc", "tr-rule", "risk-rule"
    );
    let mut high_ratio_gap = None;
    let mut low_ratio_gap = None;
    for &dim_rows in &[5usize, 20, 100, 400, 1200] {
        let (joined, fk_only, profile) = build(dim_rows, 13);
        let ja = accuracy(&joined);
        let fa = accuracy(&fk_only);
        let tr = tuple_ratio_rule(&profile, 20.0);
        let rr = risk_rule(&profile, 10.0);
        println!(
            "{dim_rows:>9} {:>12.1} {:>11.3} {:>9.3} {:>14} {:>12}",
            profile.tuple_ratio(),
            ja,
            fa,
            format!("{tr:?}"),
            format!("{rr:?}")
        );
        if dim_rows == 5 {
            high_ratio_gap = Some(ja - fa);
            assert_eq!(tr, Decision::AvoidJoin);
        }
        if dim_rows == 1200 {
            low_ratio_gap = Some(ja - fa);
            assert_eq!(tr, Decision::KeepJoin);
        }
    }
    // Shape check: avoiding the join costs little at high tuple ratio and
    // more at low tuple ratio.
    let (hi, lo) = (high_ratio_gap.unwrap(), low_ratio_gap.unwrap());
    println!("accuracy cost of avoiding the join: {hi:.3} (high ratio) vs {lo:.3} (low ratio)");
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (joined, fk_only, _) = build(100, 13);
    let mut g = c.benchmark_group("e09_hamlet");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("train_joined", |b| b.iter(|| accuracy(&joined)));
    g.bench_function("train_fk_only", |b| b.iter(|| accuracy(&fk_only)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
