//! E8 — batched feature-subset exploration vs naive refitting.
//!
//! The canonical shape: the naive approach re-reads the data per subset, so
//! its cost grows linearly in the number of subsets R; the batched approach
//! pays one shared Gram pass plus O(k^3) per subset, so its marginal cost is
//! data-independent and the speedup grows with R.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_modelsel::columbus::{batched_explore, naive_explore, SharedGram};

const N: usize = 20_000;
const D: usize = 24;

fn data() -> (dm_matrix::Dense, Vec<f64>) {
    let d = dm_data::labeled::regression(N, D, 0.05, 61);
    (d.x, d.y)
}

/// R deterministic subsets of size 4..=8 over D features.
fn subsets(r: usize) -> Vec<Vec<usize>> {
    (0..r)
        .map(|i| {
            let k = 4 + i % 5;
            (0..k)
                .map(|j| (i * 7 + j * 3) % D)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        })
        .collect()
}

fn print_table() {
    let (x, y) = data();
    println!("\n=== E8: feature-subset exploration, naive vs batched (n={N}, d={D}) ===");
    println!("{:>6} {:>12} {:>12} {:>9}", "R", "naive(ms)", "batched(ms)", "speedup");
    for &r in &[5usize, 20, 50, 100] {
        let ss = subsets(r);
        let tn = dm_bench::time_mean(3, || naive_explore(&x, &y, &ss, 0.01).expect("naive"));
        let tb = dm_bench::time_mean(3, || batched_explore(&x, &y, &ss, 0.01).expect("batched"));
        println!("{r:>6} {:>12.2} {:>12.2} {:>8.1}x", tn * 1e3, tb * 1e3, tn / tb.max(1e-12));
    }
    // Correctness at one configuration.
    let ss = subsets(10);
    let a = naive_explore(&x, &y, &ss, 0.01).expect("naive");
    let b = batched_explore(&x, &y, &ss, 0.01).expect("batched");
    for (na, ba) in a.iter().zip(&b) {
        assert!((na.r2 - ba.r2).abs() < 1e-6);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (x, y) = data();
    let ss = subsets(50);
    let mut g = c.benchmark_group("e08_columbus");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("naive_50_subsets", |b| {
        b.iter(|| naive_explore(&x, &y, &ss, 0.01).expect("naive"))
    });
    g.bench_function("batched_50_subsets", |b| {
        b.iter(|| batched_explore(&x, &y, &ss, 0.01).expect("batched"))
    });
    // Isolate the two phases of the batched approach.
    g.bench_function("shared_gram_pass", |b| b.iter(|| SharedGram::build(&x, &y).expect("gram")));
    let shared = SharedGram::build(&x, &y).expect("gram");
    g.bench_function("subset_solves_only", |b| {
        b.iter(|| {
            for s in &ss {
                shared.solve_subset(s, 0.01).expect("solve");
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
