//! E6 — dense vs sparse kernel crossover across input sparsity.
//!
//! The canonical shape: CSR gemv wins below some density (index overhead is
//! amortized by skipped zeros), dense wins above it; the crossover on this
//! code base calibrates the physical planner's `SPARSE_THRESHOLD`.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_lang::physical::SPARSE_THRESHOLD;
use dm_matrix::{ops, sparse, Csr};

const N: usize = 20_000;
const D: usize = 100;

fn print_table() {
    println!("\n=== E6: gemv dense vs CSR across density ({N}x{D}) ===");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>8}",
        "density", "dense(ms)", "csr(ms)", "csr/dense", "winner"
    );
    let v: Vec<f64> = (0..D).map(|i| (i as f64) * 0.02 - 1.0).collect();
    let mut crossover_seen = false;
    for &density in &[0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let m = dm_data::matgen::sparse_uniform(N, D, density, 17);
        let s = Csr::from_dense(&m);
        let td = dm_bench::time_mean(10, || ops::gemv(&m, &v));
        let ts = dm_bench::time_mean(10, || sparse::spmv(&s, &v));
        let winner = if ts < td { "csr" } else { "dense" };
        if winner == "dense" {
            crossover_seen = true;
        }
        println!(
            "{density:>9.3} {:>12.3} {:>12.3} {:>12.2} {:>8}",
            td * 1e3,
            ts * 1e3,
            ts / td.max(1e-12),
            winner
        );
    }
    println!("planner threshold: density < {SPARSE_THRESHOLD} -> sparse kernel");
    assert!(crossover_seen, "dense must win at full density");
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let v: Vec<f64> = (0..D).map(|i| (i as f64) * 0.02 - 1.0).collect();
    let mut g = c.benchmark_group("e06_crossover");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &density in &[0.01, 0.2, 1.0] {
        let m = dm_data::matgen::sparse_uniform(N, D, density, 17);
        let s = Csr::from_dense(&m);
        g.bench_function(format!("dense_d{density}"), |b| b.iter(|| ops::gemv(&m, &v)));
        g.bench_function(format!("csr_d{density}"), |b| b.iter(|| sparse::spmv(&s, &v)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
