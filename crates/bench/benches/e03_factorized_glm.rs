//! E3 — factorized vs materialized GLM training across tuple ratios.
//!
//! The canonical crossover: at tuple ratio ~1 (no redundancy) factorized and
//! materialized epochs cost about the same; as the ratio grows, the
//! factorized epoch cost stays flat in the dimension features while the
//! materialized cost scales with n·d — factorized wins by roughly the
//! feature-redundancy factor.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_factorized::{DimTable, NormalizedMatrix};

const FACT_ROWS: usize = 50_000;
const FACT_FEATS: usize = 2;
const DIM_FEATS: usize = 30;

fn build(tuple_ratio: usize) -> (NormalizedMatrix, Vec<f64>) {
    let dim_rows = (FACT_ROWS / tuple_ratio).max(1);
    let d = dm_data::star::generate(&dm_data::star::StarConfig {
        fact_rows: FACT_ROWS,
        dim_rows,
        fact_features: FACT_FEATS,
        dim_features: DIM_FEATS,
        noise: 0.01,
        seed: 99,
    });
    let nm = NormalizedMatrix::new(
        d.fact.clone(),
        vec![DimTable::new(d.dim.clone(), d.fk.clone()).expect("valid keys")],
    )
    .expect("valid schema");
    (nm, d.y_regression)
}

/// One gradient-descent epoch over the factorized representation.
fn epoch_factorized(nm: &NormalizedMatrix, y: &[f64], w: &[f64]) -> Vec<f64> {
    let pred = nm.gemv(w);
    let resid: Vec<f64> = pred.iter().zip(y).map(|(p, t)| p - t).collect();
    nm.vecmat(&resid)
}

/// One epoch over the pre-materialized dense join.
fn epoch_materialized(x: &dm_matrix::Dense, y: &[f64], w: &[f64]) -> Vec<f64> {
    let pred = dm_matrix::ops::gemv(x, w);
    let resid: Vec<f64> = pred.iter().zip(y).map(|(p, t)| p - t).collect();
    dm_matrix::ops::tmv(x, &resid)
}

fn print_table() {
    println!("\n=== E3: per-epoch cost, factorized vs materialized (n={FACT_ROWS}, d_S={FACT_FEATS}, d_R={DIM_FEATS}) ===");
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "tuple-ratio", "factorized(ms)", "material.(ms)", "speedup"
    );
    for &tr in &[1usize, 5, 20, 100, 500] {
        let (nm, y) = build(tr);
        let x = nm.materialize();
        let w: Vec<f64> = (0..nm.cols()).map(|i| (i as f64).cos() * 0.1).collect();
        let tf = dm_bench::time_mean(5, || epoch_factorized(&nm, &y, &w));
        let tm = dm_bench::time_mean(5, || epoch_materialized(&x, &y, &w));
        println!("{tr:>12} {:>14.3} {:>14.3} {:>8.1}x", tf * 1e3, tm * 1e3, tm / tf.max(1e-12));
        // Correctness: both epochs produce the same gradient.
        let gf = epoch_factorized(&nm, &y, &w);
        let gm = epoch_materialized(&x, &y, &w);
        for (a, b) in gf.iter().zip(&gm) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e03_glm_epoch");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &tr in &[1usize, 100] {
        let (nm, y) = build(tr);
        let x = nm.materialize();
        let w: Vec<f64> = (0..nm.cols()).map(|i| (i as f64).cos() * 0.1).collect();
        g.bench_function(format!("factorized_tr{tr}"), |b| {
            b.iter(|| epoch_factorized(&nm, &y, &w))
        });
        g.bench_function(format!("materialized_tr{tr}"), |b| {
            b.iter(|| epoch_materialized(&x, &y, &w))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
