//! E16 — single-core kernel microbenchmarks with GFLOP/s reporting.
//!
//! Isolates the dense and compressed inner kernels from planner/buffer
//! machinery so kernel-level regressions show up undiluted:
//!
//! - `gemm_{n}`: serial packed gemm ([`ops::gemm`]) at n = 256 .. 2048.
//!   The pack-and-microkernel restructure is judged here — GFLOP/s should
//!   stay flat as n grows past cache sizes instead of falling off a cliff.
//! - `gemv` / `crossprod`: memory-bound dense kernels (paired-row dot
//!   products, slice-zip upper-triangle accumulation).
//! - `gemv_{ole,ddc,rle}`: CLA column-group gemv on clustered data, one
//!   encoding per case. "Effective" GFLOP/s is computed against the nominal
//!   dense flop count (2·rows·cols), so beating `gemv` means pre-aggregation
//!   is paying off, not that more arithmetic got done.
//!
//! Besides the criterion timings (consumed by `scripts/bench_snapshot.sh`
//! and gated by `scripts/bench_regress.py` in CI), each kernel prints an
//! `e16 gflops <case> <value>` line from a best-of-N wall-clock measurement
//! for direct comparison with EXPERIMENTS.md tables.
//!
//! `DMML_BENCH_E16_MAX_N` caps the largest gemm size (default 2048) so
//! constrained runners can keep the bench cheap without losing the ids that
//! CI gates on smaller sizes.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dm_compress::group::{encode, Encoding};
use dm_compress::kernels;
use dm_matrix::{ops, Dense};

const GEMM_SIZES: [usize; 4] = [256, 512, 1024, 2048];
const GEMV_N: usize = 2048;
const XPROD_ROWS: usize = 4096;
const XPROD_COLS: usize = 256;
const CLA_ROWS: usize = 100_000;
const CLA_COLS: usize = 8;

fn max_gemm_n() -> usize {
    std::env::var("DMML_BENCH_E16_MAX_N").ok().and_then(|v| v.parse().ok()).unwrap_or(2048)
}

fn sample(rows: usize, cols: usize, seed: u64) -> Dense {
    dm_data::matgen::dense_uniform(rows, cols, -1.0, 1.0, seed)
}

/// Best-of-`reps` wall-clock time of `f`, for the GFLOP/s summary lines.
/// Minimum (not mean) because kernel throughput questions are about the
/// undisturbed run, and interference only ever adds time.
fn time_best(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

fn report_gflops(case: &str, flops: f64, best: Duration) {
    println!("e16 gflops {case:<14} {:.2}", flops / best.as_secs_f64() / 1e9);
}

/// Reference ikj triple loop with the historical `aik == 0.0` skip — the
/// bit-identity contract the packed kernel must honor on finite inputs.
fn naive_gemm(a: &Dense, b: &Dense) -> Dense {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Dense::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aik = a.data()[i * k + p];
            if aik == 0.0 {
                continue;
            }
            let brow = &b.data()[p * n..(p + 1) * n];
            let orow = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let test_mode = std::env::args().skip(1).any(|a| a == "--test");
    let max_n = max_gemm_n();

    // Preflight: the packed path must be bit-identical to the reference
    // kernel on a shape that exercises every edge-tile case.
    {
        let a = sample(67, 91, 3);
        let b = sample(91, 53, 4);
        let packed = ops::gemm(&a, &b);
        let naive = naive_gemm(&a, &b);
        for (x, y) in packed.data().iter().zip(naive.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "packed gemm must stay bit-identical");
        }
    }

    let mut g = c.benchmark_group("e16_kernels");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));

    println!("\n=== E16: kernel throughput (serial, GFLOP/s from best-of wall clock) ===");

    for n in GEMM_SIZES {
        if n > max_n {
            println!("e16 skip gemm_{n} (DMML_BENCH_E16_MAX_N={max_n})");
            continue;
        }
        let a = sample(n, n, 11);
        let b = sample(n, n, 12);
        let case = format!("gemm_{n}");
        if !test_mode {
            let reps = if n >= 1024 { 3 } else { 5 };
            let best = time_best(reps, || {
                ops::gemm(&a, &b);
            });
            report_gflops(&case, 2.0 * (n * n * n) as f64, best);
        }
        g.bench_function(&case, |bn| bn.iter(|| ops::gemm(&a, &b)));
    }

    {
        let m = sample(GEMV_N, GEMV_N, 13);
        let v: Vec<f64> = (0..GEMV_N).map(|i| (i as f64).sin()).collect();
        if !test_mode {
            let best = time_best(20, || {
                ops::gemv(&m, &v);
            });
            report_gflops("gemv", 2.0 * (GEMV_N * GEMV_N) as f64, best);
        }
        g.bench_function("gemv", |bn| bn.iter(|| ops::gemv(&m, &v)));
    }

    {
        let m = sample(XPROD_ROWS, XPROD_COLS, 14);
        // Upper triangle incl. diagonal, mirrored afterwards: d(d+1)/2
        // multiply-adds per row.
        let flops = XPROD_ROWS as f64 * (XPROD_COLS * (XPROD_COLS + 1)) as f64;
        if !test_mode {
            let best = time_best(5, || {
                ops::crossprod(&m);
            });
            report_gflops("crossprod", flops, best);
        }
        g.bench_function("crossprod", |bn| bn.iter(|| ops::crossprod(&m)));
    }

    {
        let m = dm_data::matgen::clustered(CLA_ROWS, CLA_COLS, 10, 512, 7);
        let v: Vec<f64> = (0..CLA_COLS).map(|i| i as f64 * 0.3 - 1.0).collect();
        let cols: Vec<usize> = (0..CLA_COLS).collect();
        let expect = ops::gemv(&m, &v);
        let nominal = 2.0 * (CLA_ROWS * CLA_COLS) as f64;
        for (enc, case) in
            [(Encoding::Ole, "gemv_ole"), (Encoding::Ddc, "gemv_ddc"), (Encoding::Rle, "gemv_rle")]
        {
            let grp = encode(&m, &cols, enc);
            let mut out = vec![0.0; CLA_ROWS];
            kernels::gemv_into(&grp, &v, &mut out);
            for (a, b) in out.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "{case} disagrees with dense gemv");
            }
            if !test_mode {
                let best = time_best(20, || {
                    out.iter_mut().for_each(|o| *o = 0.0);
                    kernels::gemv_into(&grp, &v, &mut out);
                });
                report_gflops(case, nominal, best);
            }
            g.bench_function(case, |bn| {
                bn.iter(|| {
                    out.iter_mut().for_each(|o| *o = 0.0);
                    kernels::gemv_into(&grp, &v, &mut out);
                })
            });
        }
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
