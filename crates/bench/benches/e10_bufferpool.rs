//! E10 — buffer-pool hit rates by eviction policy, trace shape, and pool size.
//!
//! The canonical shapes: repeated scans larger than the pool defeat LRU
//! (0% reuse hits) while leaving skewed workloads unharmed; Clock tracks LRU
//! closely at lower bookkeeping cost; hit rate climbs with pool size until
//! the working set fits.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_buffer::{policy::PolicyKind, storage::MemStore, BufferPool, PageKey};
use dm_matrix::Dense;

const NUM_BLOCKS: usize = 64;
const BLOCK_EDGE: usize = 16; // 16x16 blocks -> 2064 bytes each

fn key(b: usize) -> PageKey {
    PageKey::new(1, b as u32, 0)
}

fn block_bytes() -> usize {
    BLOCK_EDGE * BLOCK_EDGE * 8 + 16
}

/// Replay a trace; returns the hit rate over lookups.
fn replay(kind: PolicyKind, capacity_blocks: usize, trace: &[usize]) -> f64 {
    let mut pool = BufferPool::new(capacity_blocks * block_bytes(), kind, MemStore::default());
    // Preload every block once (and let the pool spill as needed).
    for b in 0..NUM_BLOCKS {
        pool.put(key(b), Dense::filled(BLOCK_EDGE, BLOCK_EDGE, b as f64)).expect("fits");
    }
    pool.reset_stats();
    for &b in trace {
        let got = pool.get(key(b)).expect("no io errors");
        assert!(got.is_some(), "block {b} must exist somewhere");
    }
    pool.stats().hit_rate()
}

fn print_table() {
    let traces: Vec<(&str, Vec<usize>)> = vec![
        ("scan", dm_data::trace::scan(NUM_BLOCKS, 40)),
        ("hot-set", dm_data::trace::hot_set(NUM_BLOCKS, 8, 0.9, 2560, 3)),
        ("zipf", dm_data::trace::zipf(NUM_BLOCKS, 1.0, 2560, 4)),
    ];
    println!("\n=== E10: hit rate by policy and trace ({NUM_BLOCKS} blocks, pool = 16 blocks) ===");
    println!("{:<9} {:>8} {:>8} {:>8} {:>8}", "trace", "lru", "fifo", "clock", "lfu");
    for (name, trace) in &traces {
        let lru = replay(PolicyKind::Lru, 16, trace);
        let fifo = replay(PolicyKind::Fifo, 16, trace);
        let clock = replay(PolicyKind::Clock, 16, trace);
        let lfu = replay(PolicyKind::Lfu, 16, trace);
        println!("{name:<9} {lru:>8.3} {fifo:>8.3} {clock:>8.3} {lfu:>8.3}");
        if *name == "scan" {
            assert!(lru < 0.05, "LRU must thrash on oversized scans, got {lru}");
        }
        if *name == "hot-set" {
            assert!(lru > 0.7, "LRU must capture the hot set, got {lru}");
        }
    }

    println!("\n--- hit rate vs pool size (zipf trace, LRU) ---");
    println!("{:>10} {:>9}", "pool-blk", "hit-rate");
    let zipf = dm_data::trace::zipf(NUM_BLOCKS, 1.0, 2560, 4);
    let mut prev = 0.0;
    for &cap in &[4usize, 8, 16, 32, 64] {
        let hr = replay(PolicyKind::Lru, cap, &zipf);
        println!("{cap:>10} {hr:>9.3}");
        assert!(hr + 1e-9 >= prev, "hit rate must not decrease with pool size");
        prev = hr;
    }
    assert!(prev > 0.99, "full-size pool must hit ~always");
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let zipf = dm_data::trace::zipf(NUM_BLOCKS, 1.0, 2560, 4);
    let mut g = c.benchmark_group("e10_bufferpool");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for kind in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock, PolicyKind::Lfu] {
        g.bench_function(format!("replay_zipf_{kind:?}"), |b| b.iter(|| replay(kind, 16, &zipf)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
