//! E7 — search-strategy comparison: quality reached per unit of training
//! budget, with an η-ablation for successive halving.
//!
//! The canonical shape: random ≥ grid at equal budget on continuous spaces;
//! successive halving / Hyperband reach comparable quality for a small
//! fraction of the full-budget cost.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_ml::logreg::{LogRegConfig, LogisticRegression};
use dm_modelsel::search::{
    grid_search, hyperband, random_search, successive_halving, ParamSpace, Params,
};

fn data() -> (dm_matrix::Dense, Vec<f64>, dm_matrix::Dense, Vec<f64>) {
    let d = dm_data::labeled::classification(2000, 6, 3.0, 77);
    let split = dm_pipeline::split::train_test_split(d.x.rows(), 0.3, 9).expect("split");
    (
        d.x.select_rows(&split.train),
        split.train.iter().map(|&i| d.y[i]).collect(),
        d.x.select_rows(&split.test),
        split.test.iter().map(|&i| d.y[i]).collect(),
    )
}

fn print_table() {
    let (xt, yt, xv, yv) = data();
    let full_epochs = 400usize;
    let trainer = |p: &Params, budget: f64| -> f64 {
        let cfg = LogRegConfig {
            learning_rate: p.get("lr"),
            l2: p.try_get("l2").unwrap_or(0.0),
            max_iter: ((full_epochs as f64 * budget).ceil() as usize).max(1),
            tol: 0.0,
        };
        LogisticRegression::fit(&xt, &yt, &cfg).map_or(0.0, |m| m.accuracy(&xv, &yv))
    };

    println!("\n=== E7: search strategies (budget = full-training equivalents) ===");
    println!("{:<22} {:>6} {:>8} {:>8}", "strategy", "evals", "budget", "val-acc");
    let grid_space =
        ParamSpace::new().grid("lr", &[0.001, 0.01, 0.1, 1.0]).grid("l2", &[0.0, 0.01, 0.1]);
    let cont = ParamSpace::new().log_uniform("lr", 1e-3, 5.0).log_uniform("l2", 1e-5, 0.5);

    let g = grid_search(&grid_space, trainer);
    println!(
        "{:<22} {:>6} {:>8.1} {:>8.3}",
        "grid 4x3",
        g.evaluations.len(),
        g.total_budget,
        g.best_score
    );
    let r = random_search(&cont, 12, 3, trainer);
    println!(
        "{:<22} {:>6} {:>8.1} {:>8.3}",
        "random 12",
        r.evaluations.len(),
        r.total_budget,
        r.best_score
    );
    for eta in [2usize, 3, 4] {
        let s = successive_halving(&cont, 16, eta, 3, trainer);
        println!(
            "{:<22} {:>6} {:>8.1} {:>8.3}",
            format!("succ-halving eta={eta}"),
            s.evaluations.len(),
            s.total_budget,
            s.best_score
        );
        assert!(s.total_budget < g.total_budget, "early stopping must be cheaper than the grid");
    }
    let h = hyperband(&cont, 8, 2, 3, trainer);
    println!(
        "{:<22} {:>6} {:>8.1} {:>8.3}",
        "hyperband",
        h.evaluations.len(),
        h.total_budget,
        h.best_score
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (xt, yt, xv, yv) = data();
    let trainer = move |p: &Params, budget: f64| -> f64 {
        let cfg = LogRegConfig {
            learning_rate: p.get("lr"),
            l2: 0.0,
            max_iter: ((100.0 * budget).ceil() as usize).max(1),
            tol: 0.0,
        };
        LogisticRegression::fit(&xt, &yt, &cfg).map_or(0.0, |m| m.accuracy(&xv, &yv))
    };
    let cont = ParamSpace::new().log_uniform("lr", 1e-3, 5.0);

    let mut g = c.benchmark_group("e07_search");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("random_8", |b| b.iter(|| random_search(&cont, 8, 1, &trainer)));
    g.bench_function("succ_halving_8", |b| b.iter(|| successive_halving(&cont, 8, 2, 1, &trainer)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
