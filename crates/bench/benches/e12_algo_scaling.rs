//! E12 — algorithm runtime scaling in rows and features.
//!
//! The canonical shapes: normal-equation linear regression is linear in n
//! and quadratic in d; k-means per iteration is linear in n·k·d; naive Bayes
//! fitting is a single linear pass.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_ml::kmeans::{self, KMeansConfig};
use dm_ml::linreg::{LinearRegression, Solver};
use dm_ml::naive_bayes::GaussianNb;

fn print_table() {
    println!("\n=== E12: algorithm scaling (time in ms) ===");
    println!("{:>8} {:>6} {:>12} {:>12} {:>12}", "n", "d", "linreg-NE", "kmeans(k=4)", "gauss-nb");
    for &(n, d) in &[(1000usize, 8usize), (4000, 8), (16_000, 8), (4000, 32), (4000, 128)] {
        let reg = dm_data::labeled::regression(n, d, 0.05, 3);
        let (xb, yb) = dm_data::labeled::blobs(n, d, 4, 1.0, 5);
        let t_lin = dm_bench::time_mean(3, || {
            LinearRegression::fit(&reg.x, &reg.y, Solver::NormalEquations, 1e-6).expect("fit")
        });
        let t_km = dm_bench::time_mean(3, || {
            kmeans::fit(&xb, &KMeansConfig { k: 4, max_iter: 20, ..Default::default() })
                .expect("fit")
        });
        let t_nb = dm_bench::time_mean(3, || GaussianNb::fit(&xb, &yb).expect("fit"));
        println!("{n:>8} {d:>6} {:>12.2} {:>12.2} {:>12.2}", t_lin * 1e3, t_km * 1e3, t_nb * 1e3);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let reg = dm_data::labeled::regression(8000, 16, 0.05, 3);
    let (xb, yb) = dm_data::labeled::blobs(8000, 16, 4, 1.0, 5);

    let mut g = c.benchmark_group("e12_algos");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("linreg_normal_eq", |b| {
        b.iter(|| {
            LinearRegression::fit(&reg.x, &reg.y, Solver::NormalEquations, 1e-6).expect("fit")
        })
    });
    g.bench_function("linreg_cg", |b| {
        b.iter(|| {
            LinearRegression::fit(&reg.x, &reg.y, Solver::ConjugateGradient, 1e-6).expect("fit")
        })
    });
    g.bench_function("kmeans_k4", |b| {
        b.iter(|| {
            kmeans::fit(&xb, &KMeansConfig { k: 4, max_iter: 20, ..Default::default() })
                .expect("fit")
        })
    });
    g.bench_function("gaussian_nb", |b| b.iter(|| GaussianNb::fit(&xb, &yb).expect("fit")));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
