//! E14 — out-of-core graceful degradation: the blocked kernels under a
//! budget-fraction sweep (100% / 50% / 25% / 10% of the working set).
//!
//! The canonical shape: runtime degrades smoothly as the budget shrinks —
//! no OOM, no cliff — while spill bytes grow roughly as the working-set
//! excess over the budget. At 100% the pool holds everything and spill
//! traffic is ~zero; at 10% nearly every tile round-trips through the
//! backing store. The compressed-mv arm is the counterpoint: compression
//! shrinks the working set below even the smallest budget, so the compressed
//! in-memory kernel stays flat where the dense out-of-core path pays
//! fault-in traffic.
//!
//! Every blocked kernel is bit-identical to its in-memory counterpart, so
//! the sweep measures pure pool traffic, not numerical drift.
//!
//! The gemm shape defaults to 768x512x384 and can be shrunk for constrained
//! machines via `DMML_BENCH_OOC_N` (scales all three dimensions).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dm_bench::{row, time_once};
use dm_buffer::policy::PolicyKind;
use dm_buffer::storage::FileStore;
use dm_buffer::{ooc, BlockStore, BufferPool, SharedBufferPool};
use dm_compress::{planner::CompressionConfig, CompressedMatrix};
use dm_matrix::{ops, Dense};

/// Budget fractions of the working set swept by every arm.
const FRACTIONS: [(u32, f64); 4] = [(100, 1.0), (50, 0.5), (25, 0.25), (10, 0.10)];

/// Thread degree for the blocked kernels (bit-identical at any degree).
const DEGREE: usize = 2;

/// Rows / cols of the compressed matrix-vector workload.
const CMV_ROWS: usize = 200_000;
const CMV_COLS: usize = 8;

fn scale() -> usize {
    std::env::var("DMML_BENCH_OOC_N").ok().and_then(|s| s.parse().ok()).unwrap_or(768)
}

fn disk_pool(capacity: usize) -> SharedBufferPool<FileStore> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dmml_e14_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let store = FileStore::new(dir).expect("spill dir");
    SharedBufferPool::new(BufferPool::new(capacity, PolicyKind::Lru, store))
}

/// One full out-of-core gemm: load operands into the pool, stream the
/// product, materialize it, release everything.
fn ooc_gemm_run(a: &Dense, b: &Dense, budget: usize) -> (Dense, SharedBufferPool<FileStore>) {
    let pool = disk_pool(budget);
    let pr_a = dm_buffer::panel_rows_for(a.cols(), budget, 8);
    let pr_b = dm_buffer::panel_rows_for(b.cols(), budget, 8);
    let sa = BlockStore::from_dense(&pool, 1, a, pr_a).expect("load A");
    let sb = BlockStore::from_dense(&pool, 2, b, pr_b).expect("load B");
    let out = ooc::gemm(&sa, &sb, 3, DEGREE).expect("blocked gemm");
    let d = out.to_dense().expect("materialize");
    for s in [sa, sb, out] {
        s.discard().expect("discard");
    }
    (d, pool)
}

fn ooc_gemv_run(m: &Dense, v: &[f64], budget: usize) -> (Vec<f64>, SharedBufferPool<FileStore>) {
    let pool = disk_pool(budget);
    let pr = dm_buffer::panel_rows_for(m.cols(), budget, 8);
    let s = BlockStore::from_dense(&pool, 1, m, pr).expect("load");
    let out = ooc::gemv(&s, v, DEGREE).expect("blocked gemv");
    s.discard().expect("discard");
    (out, pool)
}

fn bench(c: &mut Criterion) {
    let n = scale();
    let (rows, inner, cols) = (n, n * 2 / 3, n / 2);
    let gemm_ws = 8 * (rows * inner + inner * cols + rows * cols);
    println!("\n=== E14: out-of-core degradation (budget fractions 100/50/25/10%) ===");
    println!(
        "gemm {rows}x{inner} * {inner}x{cols} (working set {:.1} MB) | dense mv {CMV_ROWS}x{CMV_COLS} vs compressed in-memory",
        gemm_ws as f64 / 1e6
    );

    let a = Dense::from_fn(rows, inner, |r, c| ((r * 31 + c * 17) % 23) as f64 * 0.05 - 0.55);
    let b = Dense::from_fn(inner, cols, |r, c| ((r * 7 + c * 13) % 19) as f64 * 0.07 - 0.63);
    let expect = ops::gemm(&a, &b);

    let m = dm_data::matgen::clustered(CMV_ROWS, CMV_COLS, 10, 512, 7);
    let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
    let v: Vec<f64> = (0..CMV_COLS).map(|i| i as f64 * 0.3 - 1.0).collect();
    let mv_expect = ops::gemv(&m, &v);
    let mv_ws = 8 * CMV_ROWS * CMV_COLS;

    // Bit-identity preflight at the tightest budget: graceful degradation
    // must never mean approximate results.
    let (got, _) = ooc_gemm_run(&a, &b, gemm_ws / 10);
    assert_eq!(got.data(), expect.data(), "blocked gemm bit-identical at 10% budget");
    let (mv_got, _) = ooc_gemv_run(&m, &v, mv_ws / 10);
    assert_eq!(mv_got, mv_expect, "blocked gemv bit-identical at 10% budget");

    // Qualitative table: one timed run per fraction, with the pool traffic
    // that explains the slowdown.
    println!(
        "{}",
        row(&[
            "budget".into(),
            "gemm s".into(),
            "evictions".into(),
            "spill MB".into(),
            "fault MB".into(),
        ])
    );
    for (pct, frac) in FRACTIONS {
        let budget = (gemm_ws as f64 * frac) as usize;
        let ((_, pool), secs) = time_once(|| ooc_gemm_run(&a, &b, budget));
        let st = pool.stats();
        println!(
            "{}",
            row(&[
                format!("{pct}%"),
                format!("{secs:.3}"),
                format!("{}", st.evictions),
                format!("{:.1}", st.spilled_bytes as f64 / 1e6),
                format!("{:.1}", st.faulted_bytes as f64 / 1e6),
            ])
        );
    }

    let mut g = c.benchmark_group("e14_out_of_core");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));
    for (pct, frac) in FRACTIONS {
        let budget = (gemm_ws as f64 * frac) as usize;
        g.bench_function(format!("gemm_budget_{pct}"), |bch| {
            bch.iter(|| ooc_gemm_run(&a, &b, budget))
        });
    }
    for (pct, frac) in FRACTIONS {
        let budget = (mv_ws as f64 * frac) as usize;
        g.bench_function(format!("gemv_dense_ooc_budget_{pct}"), |bch| {
            bch.iter(|| ooc_gemv_run(&m, &v, budget))
        });
    }
    // The counterpoint: compression takes the working set below the budget,
    // so the in-memory compressed kernel never pays pool traffic.
    g.bench_function("gemv_compressed_inmem", |bch| bch.iter(|| cm.gemv_with(&v, DEGREE)));
    g.bench_function("gemv_dense_inmem", |bch| bch.iter(|| ops::gemv(&m, &v)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
