//! E11 — end-to-end lifecycle pipeline throughput by stage.
//!
//! CSV parse -> featurize (numeric + one-hot + hashing) -> impute/scale ->
//! train -> score. The canonical shape: data preparation (parsing and
//! featurization), not model training, dominates end-to-end cost — the
//! motivating observation of the lifecycle-systems pillar.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_ml::linreg::{LinearRegression, Solver};
use dm_pipeline::encode::{ColumnSpec, Featurizer};
use dm_pipeline::transform::{ImputeStrategy, Imputer, Pipeline, StandardScaler};

const ROWS: usize = 20_000;

/// Deterministic CSV document with numeric, categorical, and noisy columns.
fn make_csv() -> String {
    let mut s = String::with_capacity(ROWS * 40);
    s.push_str("age,income,city,device,label\n");
    for i in 0..ROWS as u64 {
        let age = 18 + (i * 7) % 60;
        let income = 20_000 + (i * 13_577) % 120_000;
        let city = ["paris", "lyon", "nice", "tokyo", "berlin"][(i % 5) as usize];
        let device = format!("dev-{}", (i * 31) % 97);
        let label = (income as f64 / 50_000.0 + (i % 5) as f64 * 0.3) + (i % 7) as f64 * 0.01;
        if i % 29 == 0 {
            s.push_str(&format!("{age},,{city},{device},{label:.3}\n"));
        } else {
            s.push_str(&format!("{age},{income},{city},{device},{label:.3}\n"));
        }
    }
    s
}

fn specs() -> Vec<ColumnSpec> {
    vec![
        ColumnSpec::Numeric("age".into()),
        ColumnSpec::Numeric("income".into()),
        ColumnSpec::OneHot("city".into()),
        ColumnSpec::Hashed { column: "device".into(), buckets: 16 },
    ]
}

fn print_table() {
    let csv = make_csv();
    println!("\n=== E11: end-to-end pipeline stage costs ({ROWS} rows) ===");
    let (table, t_parse) =
        dm_bench::time_once(|| dm_rel::csv::read_csv(csv.as_bytes(), "events").expect("csv"));
    let (feat, t_fit_feat) =
        dm_bench::time_once(|| Featurizer::fit(&table, &specs()).expect("fit"));
    let (x_raw, t_feat) = dm_bench::time_once(|| feat.transform(&table).expect("transform"));
    let y: Vec<f64> =
        (0..table.num_rows()).map(|r| table.row(r).get("label").as_f64().expect("label")).collect();
    let mut pipe =
        Pipeline::new().add(Imputer::new(ImputeStrategy::Mean)).add(StandardScaler::new());
    let (x, t_pipe) = dm_bench::time_once(|| pipe.fit_transform(&x_raw).expect("pipeline"));
    let (model, t_train) = dm_bench::time_once(|| {
        LinearRegression::fit(&x, &y, Solver::NormalEquations, 1e-6).expect("train")
    });
    let (_, t_score) = dm_bench::time_once(|| model.predict(&x));

    let total = t_parse + t_fit_feat + t_feat + t_pipe + t_train + t_score;
    println!("{:<16} {:>10} {:>10} {:>12}", "stage", "time(ms)", "% total", "rows/s");
    for (name, t) in [
        ("csv-parse", t_parse),
        ("featurize-fit", t_fit_feat),
        ("featurize", t_feat),
        ("impute+scale", t_pipe),
        ("train", t_train),
        ("score", t_score),
    ] {
        println!(
            "{name:<16} {:>10.2} {:>9.1}% {:>12.0}",
            t * 1e3,
            100.0 * t / total,
            ROWS as f64 / t.max(1e-12)
        );
    }
    println!("{:<16} {:>10.2}", "TOTAL", total * 1e3);
    println!("model r2 on training data: {:.4}", model.r2(&x, &y));
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let csv = make_csv();
    let table = dm_rel::csv::read_csv(csv.as_bytes(), "events").expect("csv");
    let feat = Featurizer::fit(&table, &specs()).expect("fit");

    let mut g = c.benchmark_group("e11_pipeline");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("csv_parse", |b| {
        b.iter(|| dm_rel::csv::read_csv(csv.as_bytes(), "events").expect("csv"))
    });
    g.bench_function("featurize", |b| b.iter(|| feat.transform(&table).expect("transform")));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
