//! # dm-bench
//!
//! The benchmark harness regenerating experiments **E1..E14** from
//! EXPERIMENTS.md. Each `benches/eNN_*.rs` target both prints the experiment's
//! measured table (so the qualitative shape can be eyeballed straight from
//! `cargo bench` output) and registers Criterion timings for the kernels
//! involved.
//!
//! This library crate holds the small helpers shared across bench targets.

#![warn(missing_docs)]

use std::time::Instant;

/// Time a closure once, returning seconds (for coarse table rows where
/// Criterion's statistical machinery is unnecessary).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

/// Time a closure over `reps` repetitions, returning mean seconds per rep.
pub fn time_mean<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Render a simple aligned table row for experiment printouts.
pub fn row(cells: &[String]) -> String {
    cells.iter().map(|c| format!("{c:>14}")).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (v, secs) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        let mean = time_mean(3, || 1 + 1);
        assert!(mean >= 0.0);
    }

    #[test]
    fn row_formatting() {
        let s = row(&["a".into(), "b".into()]);
        assert!(s.contains('a') && s.contains('b'));
        assert!(s.len() >= 29);
    }
}
