//! E14 shape test (fast): as the budget shrinks across the 100/50/25/10%
//! sweep, spill traffic grows monotonically while the result stays
//! bit-identical — the "graceful degradation, no OOM" claim of
//! EXPERIMENTS.md E14 at miniature scale.

use dm_buffer::policy::PolicyKind;
use dm_buffer::storage::MemStore;
use dm_buffer::{ooc, panel_rows_for, BlockStore, BufferPool, SharedBufferPool};
use dm_matrix::{ops, Dense};

fn pool(capacity: usize) -> SharedBufferPool<MemStore> {
    SharedBufferPool::new(BufferPool::new(capacity, PolicyKind::Lru, MemStore::default()))
}

#[test]
fn spill_grows_as_budget_shrinks_and_results_stay_exact() {
    let (rows, inner, cols) = (96, 64, 48);
    let a = Dense::from_fn(rows, inner, |r, c| ((r * 31 + c * 17) % 23) as f64 * 0.05 - 0.55);
    let b = Dense::from_fn(inner, cols, |r, c| ((r * 7 + c * 13) % 19) as f64 * 0.07 - 0.63);
    let expect = ops::gemm(&a, &b);
    let ws = 8 * (rows * inner + inner * cols + rows * cols);

    let mut spilled = Vec::new();
    for frac in [1.0_f64, 0.5, 0.25, 0.10] {
        // 512 B of slack covers the per-panel codec headers, so the 100%
        // point really holds the whole working set.
        let budget = (ws as f64 * frac) as usize + 512;
        let p = pool(budget);
        let sa = BlockStore::from_dense(&p, 1, &a, panel_rows_for(a.cols(), budget, 8)).unwrap();
        let sb = BlockStore::from_dense(&p, 2, &b, panel_rows_for(b.cols(), budget, 8)).unwrap();
        let out = ooc::gemm(&sa, &sb, 3, 2).unwrap();
        assert_eq!(
            out.to_dense().unwrap().data(),
            expect.data(),
            "bit-identical at {:.0}% budget",
            frac * 100.0
        );
        p.audit_quiescent().unwrap();
        spilled.push(p.stats().spilled_bytes);
    }

    // 100% budget: everything fits, nothing spills. Shrinking budgets spill
    // monotonically more.
    assert_eq!(spilled[0], 0, "full budget must not spill: {spilled:?}");
    assert!(spilled.windows(2).all(|w| w[0] <= w[1]), "monotone spill growth: {spilled:?}");
    assert!(spilled[3] > 0, "10% budget must spill: {spilled:?}");
}
