//! Integration coverage for the extension round: query builder + predicates,
//! polynomial features feeding SGD, softmax + forest on shared data, LU in a
//! whitening pipeline, compressed-matrix serialization through the buffer
//! codec path, and forward selection end to end.

use dmml::compress::planner::CompressionConfig;
use dmml::compress::serial;
use dmml::matrix::lu;
use dmml::ml::forest::{ForestConfig, RandomForest};
use dmml::ml::sgd::{train_sgd, SgdConfig};
use dmml::ml::softmax::{SoftmaxConfig, SoftmaxRegression};
use dmml::modelsel::columbus::{forward_select, SharedGram};
use dmml::pipeline::transform::{PolynomialFeatures, Transformer};
use dmml::prelude::*;
use dmml::rel::{JoinKind, Predicate, Query, SortOrder};

/// Query builder composes with featurization: SQL-ish preprocessing before ML.
#[test]
fn query_pipeline_feeds_model_training() {
    let star = dmml::data::star::generate(&dmml::data::star::StarConfig {
        fact_rows: 400,
        dim_rows: 8,
        ..Default::default()
    });
    let (fact, dim) = dmml::data::star::to_tables(&star);

    // Declarative preprocessing: join, filter out one dimension value, sort.
    let prepared = Query::scan(fact)
        .join(dim, "fk", "id", JoinKind::Inner)
        .filter(Predicate::gt("label", -10.0))
        .sort(&[("label", SortOrder::Asc)])
        .run()
        .unwrap();
    assert!(prepared.num_rows() > 300);

    // Labels are sorted ascending.
    let labels: Vec<f64> =
        (0..prepared.num_rows()).map(|r| prepared.row(r).get("label").as_f64().unwrap()).collect();
    assert!(labels.windows(2).all(|w| w[0] <= w[1]));

    // Train on the joined features straight from the query output.
    let x = prepared.to_dense(&["s0", "s1", "r0", "r1", "r2", "r3"]).unwrap();
    let m = LinearRegression::fit(&x, &labels, Solver::NormalEquations, 1e-8).unwrap();
    assert!(m.r2(&x, &labels) > 0.999, "r2 {}", m.r2(&x, &labels));
}

/// Polynomial expansion lets SGD learn a quadratic function.
#[test]
fn polynomial_sgd_learns_quadratic() {
    let x = Dense::from_fn(300, 1, |r, _| (r as f64) / 150.0 - 1.0);
    let y: Vec<f64> = (0..300)
        .map(|r| {
            let v = (r as f64) / 150.0 - 1.0;
            2.0 * v * v - v + 0.5
        })
        .collect();
    let mut poly = PolynomialFeatures::new();
    poly.fit(&x).unwrap();
    let z = poly.transform(&x).unwrap(); // [v, v^2]
    let za = Dense::filled(z.rows(), 1, 1.0).hcat(&z); // intercept column
    let cfg = SgdConfig { learning_rate: 0.3, epochs: 400, decay: 1.0, ..Default::default() };
    let fit = train_sgd(&za, &y, Family::Gaussian, &cfg).unwrap();
    // weights: [intercept, v, v^2] ≈ [0.5, -1, 2]
    assert!((fit.weights[0] - 0.5).abs() < 0.05, "{:?}", fit.weights);
    assert!((fit.weights[1] + 1.0).abs() < 0.05);
    assert!((fit.weights[2] - 2.0).abs() < 0.05);
}

/// Softmax and random forest agree on well-separated multi-class data.
#[test]
fn softmax_and_forest_agree_on_blobs() {
    let (x, y) = dmml::data::labeled::blobs(240, 3, 4, 1.0, 11);
    let sm = SoftmaxRegression::fit(&x, &y, &SoftmaxConfig::default()).unwrap();
    let rf = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
    assert!(sm.accuracy(&x, &y) > 0.97, "softmax {}", sm.accuracy(&x, &y));
    assert!(rf.accuracy(&x, &y) > 0.97, "forest {}", rf.accuracy(&x, &y));
    // They disagree on at most a small fraction of points.
    let disagreements =
        sm.predict(&x).iter().zip(rf.predict(&x)).filter(|(a, b)| **a != *b).count();
    assert!(disagreements < 24, "{disagreements} disagreements");
}

/// LU-based whitening: transform features by the inverse covariance factor
/// and verify the whitened covariance is the identity.
#[test]
fn lu_whitening_produces_identity_covariance() {
    let d = dmml::data::labeled::regression(500, 3, 0.0, 23);
    // Covariance of centered features.
    let means = dmml::matrix::ops::col_means(&d.x);
    let mut centered = d.x.clone();
    for r in 0..centered.rows() {
        for (v, &m) in centered.row_mut(r).iter_mut().zip(&means) {
            *v -= m;
        }
    }
    let mut cov = dmml::matrix::ops::crossprod(&centered);
    let inv_n = 1.0 / centered.rows() as f64;
    cov.map_inplace(|v| v * inv_n);
    // Whiten via the Cholesky factor's inverse, computed through LU.
    let l = dmml::matrix::solve::cholesky(&cov).unwrap();
    let l_inv = lu::lu(&l).unwrap().inverse();
    let whitened = dmml::matrix::ops::gemm(&centered, &l_inv.transpose());
    let mut wcov = dmml::matrix::ops::crossprod(&whitened);
    wcov.map_inplace(|v| v * inv_n);
    assert!(wcov.approx_eq(&Dense::identity(3), 1e-8), "whitened covariance must be I");
}

/// Compressed matrices survive a serialize/deserialize hop and still train.
#[test]
fn compressed_serialization_round_trip_trains() {
    let x = dmml::data::matgen::low_cardinality(1500, 3, 5, 31);
    let truth = [2.0, -1.0, 0.5];
    let y = dmml::matrix::ops::gemv(&x, &truth);
    let cm = CompressedMatrix::compress(&x, &CompressionConfig::default());
    let wire = serial::encode(&cm);
    let back = serial::decode(wire).expect("valid wire format");
    assert_eq!(back, cm);

    let gd = GdConfig { learning_rate: 0.1, max_iter: 5000, tol: 1e-10, ..Default::default() };
    let fit =
        dmml::ml::glm::train_gd(|w| back.gemv(w), |r| back.vecmat(r), &y, 3, Family::Gaussian, &gd)
            .unwrap();
    for (w, t) in fit.weights.iter().zip(&truth) {
        assert!((w - t).abs() < 1e-3, "{:?}", fit.weights);
    }
}

/// Forward selection over polynomial features picks the true terms.
#[test]
fn forward_selection_over_polynomial_features() {
    // y = 3*x0 + x1^2 (feature 0 and the square of feature 1).
    let base = dmml::data::matgen::dense_uniform(400, 2, -2.0, 2.0, 41);
    let y: Vec<f64> = (0..400).map(|r| 3.0 * base.get(r, 0) + base.get(r, 1).powi(2)).collect();
    let mut poly = PolynomialFeatures::new();
    poly.fit(&base).unwrap();
    let z = poly.transform(&base).unwrap(); // [x0, x1, x0², x1², x0x1]
    let shared = SharedGram::build(&z, &y).unwrap();
    let (selected, fit) = forward_select(&shared, 3, 1e-4, 0.0).unwrap();
    let mut sorted = selected.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 3], "should pick x0 and x1²: {selected:?}");
    assert!(fit.r2 > 0.9999);
}
