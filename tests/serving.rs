//! End-to-end acceptance for the multi-tenant scoring server (ISSUE 9):
//! two concurrent tenants get results bit-identical to direct `Executor`
//! evaluation, the second identical request is a plan-cache hit (visible
//! on the `serve.plan_cache.hit` counter), an over-budget request is
//! admitted with `Kernel::Blocked` kernels instead of being rejected, and
//! everything is observable on a live `/metrics` scrape with per-tenant
//! latency quantiles.

use dmml::lang::exec::{Env, Executor};
use dmml::lang::parser;
use dmml::lang::physical::{plan_with_inputs_degree, Kernel};
use dmml::lang::size::InputSizes;
use dmml::matrix::{Dense, Matrix};
use dmml::obs::serve::MetricsServer;
use dmml::obs::StatsRegistry;
use dmml::serve::{Request, Response, ScoreResult, ScoringClient, ScoringServer, ServeConfig};
use std::io::{Read as _, Write as _};
use std::sync::Arc;

const PROGRAM: &str = "sum(t(X) %*% (X + X))";
const N: usize = 60;
const D: usize = 7;

fn x_data(seed: usize) -> Vec<f64> {
    (0..N * D).map(|i| ((i * 13 + seed * 7) % 17) as f64 * 0.31 - 2.0).collect()
}

/// What the server should compute, evaluated directly (no server, no
/// cache): the reference for bit-identity.
fn direct_eval(seed: usize) -> f64 {
    let (graph, root) = parser::parse(PROGRAM).unwrap();
    let mut sizes = InputSizes::new();
    sizes.declare("X", N, D, 1.0);
    let plan = plan_with_inputs_degree(&graph, root, &sizes, 1).unwrap();
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(Dense::from_vec(N, D, x_data(seed)).unwrap()));
    let got = Executor::with_plan(&graph, plan).eval(root, &env).unwrap();
    got.as_scalar().unwrap()
}

fn score_req(tenant: &str, seed: usize) -> Request {
    Request::score(tenant, PROGRAM).matrix("X", N, D, x_data(seed))
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

/// The tentpole acceptance test.
#[test]
fn two_tenants_bit_identical_with_cache_hit_and_live_metrics() {
    let registry = Arc::new(StatsRegistry::new());
    let server = ScoringServer::start(ServeConfig::for_tests(), Arc::clone(&registry)).unwrap();
    let metrics = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();

    // Two tenants scoring concurrently over their own connections.
    let addr = server.addr();
    let handles: Vec<_> = [("acme", 1usize), ("globex", 2usize)]
        .into_iter()
        .map(|(tenant, seed)| {
            std::thread::spawn(move || {
                let mut c = ScoringClient::connect(addr).unwrap();
                c.ping(tenant).unwrap();
                let resp = c.request(&score_req(tenant, seed)).unwrap();
                (tenant, seed, resp)
            })
        })
        .collect();
    for h in handles {
        let (tenant, seed, resp) = h.join().unwrap();
        let Response::Score { result: ScoreResult::Scalar(got), blocked_nodes, .. } = resp else {
            panic!("{tenant}: expected scalar score, got {resp:?}");
        };
        assert_eq!(
            got.to_bits(),
            direct_eval(seed).to_bits(),
            "{tenant}: served result must be bit-identical to direct evaluation"
        );
        assert_eq!(blocked_nodes, 0);
    }

    // A repeat of an identical request (same program, same size class)
    // must hit the plan cache.
    let (hits_before, _, _) = server.plan_cache_stats();
    let mut c = ScoringClient::connect(addr).unwrap();
    let Response::Score { cache_hit, result: ScoreResult::Scalar(got), .. } =
        c.request(&score_req("acme", 1)).unwrap()
    else {
        panic!("expected scalar score");
    };
    assert!(cache_hit, "identical repeat request must be a plan-cache hit");
    assert_eq!(got.to_bits(), direct_eval(1).to_bits(), "hit path changed the result");
    let (hits_after, misses, _) = server.plan_cache_stats();
    assert!(hits_after > hits_before, "cache hit counter must advance");
    assert!(misses >= 1, "first compile was a miss");

    // Live /metrics: plan-cache counters and per-tenant latency quantiles.
    let scrape = http_get(metrics.addr(), "/metrics");
    assert!(scrape.contains("dmml_serve_plan_cache_hit"), "{scrape}");
    assert!(scrape.contains("dmml_serve_plan_cache_miss"), "{scrape}");
    assert!(scrape.contains("dmml_serve_requests"), "{scrape}");
    for tenant in ["acme", "globex"] {
        let family = format!("dmml_serve_tenant_{tenant}_latency_ns");
        assert!(
            scrape.contains(&format!("{family}{{quantile=\"0.99\"}}")),
            "missing per-tenant p99 for {tenant}: {scrape}"
        );
    }
    // /healthz answers on the same endpoint.
    assert!(http_get(metrics.addr(), "/healthz").contains("ok"));

    metrics.shutdown();
    server.shutdown();
}

/// Over-budget requests degrade to blocked (out-of-core) kernels and are
/// admitted — not rejected, not OOMing neighbors.
#[test]
fn over_budget_request_is_admitted_as_blocked() {
    let registry = Arc::new(StatsRegistry::new());
    let mut cfg = ServeConfig::for_tests();
    // Budget far below the ~1.3 MB working set of a 120x120 chain: the
    // planner must certify-and-block, and the ledger must admit it.
    cfg.budget = dmml::lang::memory::MemoryBudget::bytes(96 * 1024);
    let server = ScoringServer::start(cfg, Arc::clone(&registry)).unwrap();

    let n = 120;
    let data: Vec<f64> = (0..n * n).map(|i| ((i % 13) as f64) * 0.5 - 3.0).collect();
    let req = Request::score("bigco", "sum(X %*% X)").matrix("X", n, n, data.clone());
    let mut c = ScoringClient::connect(server.addr()).unwrap();
    let resp = c.request(&req).unwrap();
    let Response::Score { result: ScoreResult::Scalar(got), blocked_nodes, .. } = resp else {
        panic!("over-budget request must succeed, got {resp:?}");
    };
    assert!(blocked_nodes > 0, "over-budget plan must carry Kernel::Blocked nodes");

    // The same plan, compiled directly under the same budget, agrees both
    // on the kernel choice and on the value, bit for bit.
    let (graph, root) = parser::parse("sum(X %*% X)").unwrap();
    let mut sizes = InputSizes::new();
    sizes.declare("X", n, n, 1.0);
    let sizemap = dmml::lang::size::propagate(&graph, root, &sizes).unwrap();
    let plan = dmml::lang::physical::plan_with_memory(
        &graph,
        root,
        &sizemap,
        1,
        dmml::lang::memory::MemoryBudget::bytes(96 * 1024),
    );
    assert!(!plan.nodes_with(Kernel::Blocked).is_empty());
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(Dense::from_vec(n, n, data).unwrap()));
    let want = Executor::with_plan(&graph, plan).eval(root, &env).unwrap().as_scalar().unwrap();
    assert_eq!(got.to_bits(), want.to_bits(), "blocked serving path changed the result");

    // Admission accounting saw the tenant.
    let usage = server.ledger().session_usage("bigco").expect("tenant was admitted");
    assert_eq!(usage.admitted, 1);
    assert!(usage.peak_bytes > 0);
    server.shutdown();
}

/// Micro-batching correctness: concurrent vector scorings against the
/// same model coalesce (or not, depending on timing) and each participant
/// gets exactly its own result column. A request that did NOT coalesce is
/// bit-identical to direct gemv; one that did ran through the stacked
/// gemm kernel, whose summation order may differ from gemv by ulps — so
/// batched results are checked against direct evaluation with a tight
/// relative tolerance instead (see `crates/serve/src/batch.rs` docs).
#[test]
fn batched_scoring_matches_direct_evaluation() {
    let registry = Arc::new(StatsRegistry::new());
    let mut cfg = ServeConfig::for_tests();
    cfg.batch_deadline = std::time::Duration::from_millis(50);
    let server = ScoringServer::start(cfg, Arc::clone(&registry)).unwrap();
    let addr = server.addr();

    let n = 24usize;
    let w: Vec<f64> = (0..n * n).map(|i| ((i * 11) % 19) as f64 * 0.23 - 1.7).collect();
    let vec_for = |seed: usize| -> Vec<f64> {
        (0..n).map(|i| ((i * 7 + seed * 3) % 13) as f64 * 0.41 - 2.0).collect()
    };
    let direct = |seed: usize| -> Vec<f64> {
        let (graph, root) = parser::parse("W %*% x").unwrap();
        let mut env = Env::new();
        env.bind("W", Matrix::Dense(Dense::from_vec(n, n, w.clone()).unwrap()));
        env.bind("x", Matrix::Dense(Dense::from_vec(n, 1, vec_for(seed)).unwrap()));
        let v = Executor::new(&graph).eval(root, &env).unwrap();
        v.as_dense().unwrap().data().to_vec()
    };

    let handles: Vec<_> = (0..4usize)
        .map(|seed| {
            let w = w.clone();
            let x = vec_for(seed);
            std::thread::spawn(move || {
                let mut c = ScoringClient::connect(addr).unwrap();
                let req = Request::score(&format!("tenant-{seed}"), "W %*% x")
                    .matrix("W", n, n, w)
                    .matrix("x", n, 1, x)
                    .batched();
                (seed, c.request(&req).unwrap())
            })
        })
        .collect();
    for h in handles {
        let (seed, resp) = h.join().unwrap();
        let Response::Score { result: ScoreResult::Matrix { rows, cols, data }, batched, .. } =
            resp
        else {
            panic!("expected matrix result, got {resp:?}");
        };
        assert_eq!((rows, cols), (n, 1));
        let want = direct(seed);
        if batched {
            // Coalesced: went through the stacked gemm kernel. Same math
            // as gemv, different summation tree — ulp-level agreement.
            for (i, (g, w)) in data.iter().zip(&want).enumerate() {
                let scale = w.abs().max(1.0);
                assert!(
                    (g - w).abs() <= 1e-12 * scale,
                    "batched result drifted beyond ulps at row {i} for seed {seed}: {g} vs {w}"
                );
            }
        } else {
            // Solo path: must be bit-identical to direct evaluation.
            assert_eq!(
                data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "solo result differs from direct gemv for seed {seed}"
            );
        }
    }
    server.shutdown();
}
