//! Qualitative-shape regression tests: each test pins the *direction and
//! rough magnitude* of an experiment's canonical result (who wins, where the
//! crossover falls), so EXPERIMENTS.md cannot silently rot. These are
//! work-count and accuracy checks, not wall-clock timings, so they are stable
//! under CI noise.

use dmml::compress::planner::CompressionConfig;
use dmml::compress::{CompressedMatrix, Encoding};
use dmml::prelude::*;

/// E1 shape: structured data compresses by a large factor, random data does
/// not, and co-coding strictly helps correlated columns.
#[test]
fn e1_compression_ratio_ordering() {
    let n = 20_000;
    let cfg = CompressionConfig::default();
    let random =
        CompressedMatrix::compress(&dmml::data::matgen::dense_uniform(n, 4, -1.0, 1.0, 1), &cfg);
    let lowcard =
        CompressedMatrix::compress(&dmml::data::matgen::low_cardinality(n, 4, 8, 2), &cfg);
    let clustered =
        CompressedMatrix::compress(&dmml::data::matgen::clustered(n, 4, 8, 1024, 3), &cfg);
    let correlated_m = dmml::data::matgen::correlated(n, 4, 16, 4);
    let corr_on = CompressedMatrix::compress(&correlated_m, &cfg);
    let corr_off =
        CompressedMatrix::compress(&correlated_m, &CompressionConfig { cocode: false, ..cfg });

    assert!(random.compression_ratio() < 1.2, "random: {}", random.compression_ratio());
    assert!(lowcard.compression_ratio() > 4.0, "lowcard: {}", lowcard.compression_ratio());
    assert!(clustered.compression_ratio() > 20.0, "clustered: {}", clustered.compression_ratio());
    assert!(
        corr_on.compression_ratio() > 1.5 * corr_off.compression_ratio(),
        "co-coding must pay on correlated columns: {} vs {}",
        corr_on.compression_ratio(),
        corr_off.compression_ratio()
    );
    // Clustered data should be RLE-dominated.
    assert!(clustered.groups().iter().any(|g| g.encoding() == Encoding::Rle));
}

/// E3/E4 shape: the factorized representation touches asymptotically less
/// data as the tuple ratio grows (work counted by physical cells).
#[test]
fn e3_factorized_work_shrinks_with_tuple_ratio() {
    let mut prev_ratio = 0.0;
    for &tr in &[1usize, 10, 100] {
        let fact_rows = 10_000;
        let d = dmml::data::star::generate(&dmml::data::star::StarConfig {
            fact_rows,
            dim_rows: (fact_rows / tr).max(1),
            fact_features: 1,
            dim_features: 10,
            noise: 0.0,
            seed: 3,
        });
        let nm = NormalizedMatrix::new(
            d.fact.clone(),
            vec![DimTable::new(d.dim.clone(), d.fk.clone()).unwrap()],
        )
        .unwrap();
        let ratio = nm.redundancy_ratio();
        assert!(ratio >= prev_ratio, "redundancy must grow with tuple ratio");
        prev_ratio = ratio;
    }
    assert!(prev_ratio > 5.0, "tuple ratio 100 should yield >5x redundancy, got {prev_ratio}");
}

/// E5 shape: the optimizer's flop counts drop for each canonical rewrite.
#[test]
fn e5_rewrites_reduce_flops() {
    use dmml::lang::exec::{Env, Executor};
    use dmml::lang::parser;
    use dmml::lang::rewrite::optimize;
    use dmml::lang::size::InputSizes;

    let n = 500;
    let k = 20;
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(dmml::data::matgen::dense_uniform(n, k, -1.0, 1.0, 5)));
    env.bind("Y", Matrix::Dense(dmml::data::matgen::dense_uniform(k, n, -1.0, 1.0, 6)));
    let u: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
    env.bind("u", Matrix::Dense(Dense::column(&u)));
    let mut sizes = InputSizes::new();
    sizes.declare("X", n, k, 1.0);
    sizes.declare("Y", k, n, 1.0);
    sizes.declare("u", n, 1, 1.0);

    for (src, min_ratio) in [
        ("X %*% Y %*% u", 5.0),           // chain reordering: avoid the n x n product
        ("sum(t(X) %*% X)", 1.5),         // crossprod fusion halves the multiply
        ("sum(X * X) + sum(X * X)", 1.9), // CSE + sumsq
    ] {
        let (g, root) = parser::parse(src).unwrap();
        let mut naive = Executor::new(&g);
        let nv = naive.eval(root, &env).unwrap();
        let (og, oroot, _) = optimize(&g, root, &sizes).unwrap();
        let mut opt = Executor::new(&og);
        let ov = opt.eval(oroot, &env).unwrap();
        // Same value.
        match (nv.as_scalar(), ov.as_scalar()) {
            (Some(a), Some(b)) => assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs())),
            _ => assert!(nv.as_dense().unwrap().approx_eq(&ov.as_dense().unwrap(), 1e-6)),
        }
        let ratio = naive.stats().flops as f64 / opt.stats().flops.max(1) as f64;
        assert!(ratio >= min_ratio, "{src}: flop ratio {ratio} < {min_ratio}");
    }
}

/// E7 shape: successive halving reaches within epsilon of exhaustive search
/// quality at a fraction of the budget, on a deterministic objective.
#[test]
fn e7_early_stopping_budget_savings() {
    use dmml::modelsel::search::{grid_search, successive_halving};
    let objective = |p: &Params, budget: f64| -> f64 {
        let base = -(p.get("lr").log10() + 1.0).abs();
        base * (0.6 + 0.4 * budget)
    };
    let grid =
        ParamSpace::new().grid("lr", &[1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0, 1e4]);
    let g = grid_search(&grid, objective);
    let cont = ParamSpace::new().log_uniform("lr", 1e-4, 1e4);
    let sh = successive_halving(&cont, 27, 3, 3, objective);
    assert!(
        sh.total_budget < 0.6 * g.total_budget,
        "sh {} vs grid {}",
        sh.total_budget,
        g.total_budget
    );
    assert!(sh.best_score > g.best_score - 0.5, "sh {} vs grid {}", sh.best_score, g.best_score);
}

/// E8 shape: the shared-Gram path gives identical answers to naive refits.
/// (The speedup itself is measured in the bench; here we pin correctness and
/// the fact that its data pass count is 1.)
#[test]
fn e8_batched_exploration_identical_results() {
    use dmml::modelsel::columbus::{batched_explore, naive_explore};
    let d = dmml::data::labeled::regression(2000, 10, 0.05, 13);
    let subsets: Vec<Vec<usize>> = (0..20)
        .map(|i| {
            vec![i % 10, (i * 3 + 1) % 10, (i * 7 + 2) % 10]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        })
        .collect();
    let a = naive_explore(&d.x, &d.y, &subsets, 0.01).unwrap();
    let b = batched_explore(&d.x, &d.y, &subsets, 0.01).unwrap();
    for (na, ba) in a.iter().zip(&b) {
        assert!((na.r2 - ba.r2).abs() < 1e-6);
        assert!((na.intercept - ba.intercept).abs() < 1e-6);
    }
}

/// E9 shape: at a high tuple ratio, dropping the join costs (almost) no
/// held-out accuracy; at tuple ratio ~3 the joined features win.
#[test]
fn e9_join_avoidance_accuracy_gap() {
    use dmml::factorized::hamlet::fk_one_hot;

    let run = |dim_rows: usize| -> (f64, f64) {
        let d = dmml::data::star::generate(&dmml::data::star::StarConfig {
            fact_rows: 3000,
            dim_rows,
            fact_features: 2,
            dim_features: 4,
            noise: 0.0,
            seed: 17,
        });
        let split = dmml::pipeline::split::train_test_split(3000, 0.3, 3).unwrap();
        let nm = NormalizedMatrix::new(
            d.fact.clone(),
            vec![DimTable::new(d.dim.clone(), d.fk.clone()).unwrap()],
        )
        .unwrap();
        let joined = nm.materialize();
        let fk_only = d.fact.hcat(&fk_one_hot(&d.fk, dim_rows));
        let acc = |x: &Dense| {
            let cfg = LogRegConfig { learning_rate: 0.5, max_iter: 300, tol: 0.0, l2: 1e-3 };
            let xt = x.select_rows(&split.train);
            let yt: Vec<f64> = split.train.iter().map(|&i| d.y_binary[i]).collect();
            let xv = x.select_rows(&split.test);
            let yv: Vec<f64> = split.test.iter().map(|&i| d.y_binary[i]).collect();
            LogisticRegression::fit(&xt, &yt, &cfg).map_or(0.5, |m| m.accuracy(&xv, &yv))
        };
        (acc(&joined), acc(&fk_only))
    };

    let (j_hi, f_hi) = run(10); // tuple ratio 300: safe to avoid
    assert!(f_hi > j_hi - 0.05, "high tuple ratio: FK-only {f_hi} must match joined {j_hi}");
    let (j_lo, f_lo) = run(1000); // tuple ratio 3: FK overfits
    assert!(j_lo > f_lo, "low tuple ratio: joined {j_lo} must beat FK-only {f_lo}");
}

/// E10 shape: LRU thrashes on oversized scans but wins on skewed traces;
/// hit rate is monotone in pool size.
#[test]
fn e10_policy_and_pool_size_shapes() {
    use dmml::buffer::{policy::PolicyKind, storage::MemStore};
    let num_blocks = 32;
    let block = Dense::filled(8, 8, 1.0);
    let bytes = 8 * 8 * 8 + 16;

    let replay = |kind: PolicyKind, cap_blocks: usize, trace: &[usize]| -> f64 {
        let mut pool = BufferPool::new(cap_blocks * bytes, kind, MemStore::default());
        for b in 0..num_blocks {
            pool.put(PageKey::new(0, b as u32, 0), block.clone()).unwrap();
        }
        pool.reset_stats();
        for &b in trace {
            pool.get(PageKey::new(0, b as u32, 0)).unwrap().unwrap();
        }
        pool.stats().hit_rate()
    };

    let scan = dmml::data::trace::scan(num_blocks, 20);
    let hot = dmml::data::trace::hot_set(num_blocks, 4, 0.95, 2000, 1);
    assert!(replay(PolicyKind::Lru, 8, &scan) < 0.05, "LRU must thrash on scans");
    assert!(replay(PolicyKind::Lru, 8, &hot) > 0.85, "LRU must capture the hot set");

    let zipf = dmml::data::trace::zipf(num_blocks, 1.0, 2000, 2);
    let mut prev = -1.0;
    for cap in [2usize, 8, 32] {
        let hr = replay(PolicyKind::Clock, cap, &zipf);
        assert!(hr >= prev, "hit rate must be monotone in pool size");
        prev = hr;
    }
    assert!(prev > 0.99);
}

/// E6 shape: the sparse kernel does work proportional to nnz; pin that via
/// the executor's flop accounting rather than timing.
#[test]
fn e6_sparse_work_proportional_to_nnz() {
    use dmml::lang::exec::{Env, Executor};
    use dmml::lang::parser;
    use dmml::lang::physical;
    use dmml::lang::size::InputSizes;

    let n = 2000;
    let d = 50;
    let sparse = dmml::data::matgen::sparse_uniform(n, d, 0.02, 7);
    let (g, root) = parser::parse("sum(S %*% w)").unwrap();
    let mut sizes = InputSizes::new();
    sizes.declare("S", n, d, 0.02);
    sizes.declare("w", d, 1, 1.0);
    let plan = physical::plan_with_inputs(&g, root, &sizes).unwrap();

    let mut env = Env::new();
    env.bind("S", Matrix::Dense(sparse.clone()));
    let w: Vec<f64> = (0..d).map(|i| i as f64).collect();
    env.bind("w", Matrix::Dense(Dense::column(&w)));

    let mut with_plan = Executor::with_plan(&g, plan);
    let v1 = with_plan.eval(root, &env).unwrap().as_scalar().unwrap();
    let mut dense_exec = Executor::new(&g);
    let v2 = dense_exec.eval(root, &env).unwrap().as_scalar().unwrap();
    assert!((v1 - v2).abs() < 1e-6 * (1.0 + v1.abs()));
    assert!(
        (with_plan.stats().flops as f64) < 0.2 * dense_exec.stats().flops as f64,
        "sparse plan {} vs dense plan {}",
        with_plan.stats().flops,
        dense_exec.stats().flops
    );
}
