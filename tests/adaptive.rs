//! End-to-end acceptance of the adaptive cost feedback loop (ISSUE 7):
//! observe (profiled execution → persisted kernel profiles), calibrate
//! (`CostModel` over the persisted store), re-cost (`calibrated_cost`,
//! `plan_with_profile`) — with results bit-identical to the uncalibrated
//! plan — plus the live `/metrics` scrape endpoint serving the run's
//! `lang.exec.node_self_ns` quantiles.

use dm_lang::cost::{static_ns, CostModel};
use dm_lang::exec::{Env, Executor};
use dm_lang::physical::{plan_with_inputs_degree, plan_with_inputs_profile};
use dm_lang::size::InputSizes;
use dm_lang::{estimated_cost, parser};
use dm_matrix::{Dense, Matrix};
use dm_obs::profile::{ProfileError, ProfileStore, PROFILE_FILE};
use dm_obs::serve::MetricsServer;
use dm_obs::StatsRegistry;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::Arc;

const SCRIPT: &str = "sum(t(X) %*% (X + X))";

fn workload() -> (dm_lang::Graph, dm_lang::NodeId, InputSizes, Env) {
    let (graph, root) = parser::parse(SCRIPT).unwrap();
    let mut sizes = InputSizes::new();
    sizes.declare("X", 300, 40, 1.0);
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(Dense::from_fn(300, 40, |r, c| ((r * 7 + c * 3) % 11) as f64)));
    (graph, root, sizes, env)
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dmml_adaptive_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The tentpole acceptance: run the workload profiled and persist the
/// throughput samples; a second "process" loads them, prices the plan with
/// the calibrated model, plans through the calibrated crossover, and
/// produces bit-identical results.
#[test]
fn second_run_loads_profiles_and_recosts_without_changing_results() {
    let dir = tempdir("e2e");
    let (graph, root, sizes, env) = workload();

    // --- Run 1: observe. Explicit APIs rather than DMML_PROFILE_DIR (env
    // vars are process-global and these tests run in parallel); the env
    // wiring is covered by `env_profile_dir_saves_on_drop`.
    let plan = plan_with_inputs_degree(&graph, root, &sizes, 2).unwrap();
    let mut store = ProfileStore::new();
    let baseline = {
        let mut first = None;
        for _ in 0..dm_obs::profile::MIN_SAMPLES {
            let mut ex = Executor::with_plan(&graph, plan.clone()).profiled();
            let v = ex.eval(root, &env).unwrap().as_scalar().unwrap();
            ex.record_kernel_profiles(&mut store);
            first.get_or_insert(v);
        }
        first.unwrap()
    };
    assert!(!store.is_empty(), "profiled run must yield throughput samples");
    store.save(&dir).unwrap();
    assert!(dir.join(PROFILE_FILE).exists());

    // --- Run 2: calibrate + re-cost from the persisted store.
    let model = CostModel::load(&dir).unwrap();
    assert!(!model.is_empty(), "second run sees the persisted profile");
    let plan2 = plan_with_inputs_profile(&graph, root, &sizes, 2, &model).unwrap();
    let calibrated = dm_lang::calibrated_cost(&graph, root, &sizes, &plan2, &model).unwrap();
    let est = estimated_cost(&graph, root, &sizes).unwrap();
    assert_ne!(
        calibrated,
        static_ns(est),
        "with samples loaded, the calibrated price must move off the static one"
    );
    // Where samples exist the model prices the node off observations: the
    // heavy node (matmul at this shape) got MIN_SAMPLES samples above.
    let infos = dm_lang::size::propagate(&graph, root, &sizes).unwrap();
    let costs = dm_lang::cost::node_costs(&graph, root, &infos, &plan2, &model);
    assert!(
        costs.values().any(|c| c.calibrated_ns.is_some()),
        "at least one node prices off the profile"
    );

    // --- Bit identity: the calibrated plan computes the same bits.
    let mut ex = Executor::with_plan(&graph, plan2);
    let v = ex.eval(root, &env).unwrap().as_scalar().unwrap();
    assert_eq!(v.to_bits(), baseline.to_bits(), "re-costing must not change results");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The executor's env-driven path: DMML_PROFILE_DIR at construction enables
/// profiling and merge-saves the store on drop.
#[test]
fn env_profile_dir_saves_on_drop() {
    let dir = tempdir("envdrop");
    let (graph, root, _sizes, env) = workload();
    std::env::set_var(dm_obs::profile::PROFILE_DIR_ENV, &dir);
    {
        let mut ex = Executor::new(&graph);
        ex.eval(root, &env).unwrap();
        assert!(ex.profile().is_some(), "DMML_PROFILE_DIR implies profiling");
    } // drop saves
    std::env::remove_var(dm_obs::profile::PROFILE_DIR_ENV);
    let store = ProfileStore::load(&dir).unwrap();
    assert!(!store.is_empty(), "drop persisted this run's samples");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption paths: truncation, checksum mismatch, and version skew all
/// surface typed errors from the loader, and the cost model degrades to
/// static pricing (never panics) when handed no profile.
#[test]
fn corrupt_profiles_degrade_to_the_static_model() {
    let dir = tempdir("corrupt");
    let (graph, root, sizes, _env) = workload();
    let mut store = ProfileStore::new();
    for _ in 0..4 {
        store.record("matmul", "dense", 1 << 20, 1_000_000);
    }
    let good = store.to_bytes();
    let path = dir.join(PROFILE_FILE);

    // Truncated mid-body.
    std::fs::write(&path, &good[..good.len() - 7]).unwrap();
    assert!(matches!(
        CostModel::load(&dir),
        Err(ProfileError::Truncated | ProfileError::ChecksumMismatch { .. })
    ));

    // Bit flip under the checksum.
    let mut flipped = good.clone();
    let n = flipped.len();
    flipped[n - 15] ^= 1;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(CostModel::load(&dir), Err(ProfileError::ChecksumMismatch { .. })));

    // Version skew.
    let skewed =
        String::from_utf8(good.clone()).unwrap().replace("DMML-PROFILE v1", "DMML-PROFILE v9");
    std::fs::write(&path, skewed).unwrap();
    assert!(matches!(CostModel::load(&dir), Err(ProfileError::VersionSkew { .. })));

    // Degradation: the empty model prices exactly static, and planning
    // still works — no panic anywhere on the path.
    let model = CostModel::default();
    let plan = plan_with_inputs_profile(&graph, root, &sizes, 2, &model).unwrap();
    let cal = dm_lang::calibrated_cost(&graph, root, &sizes, &plan, &model).unwrap();
    assert_eq!(cal, static_ns(estimated_cost(&graph, root, &sizes).unwrap()));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Scrape endpoint during execution: a profiled run's stats land in the
/// registry, and a raw-TCP `curl`-equivalent fetch of `/metrics` returns
/// parseable Prometheus text including the `lang_exec_node_self_ns`
/// quantile summary. `/stats.json` parses as JSON.
#[test]
fn metrics_endpoint_serves_node_self_ns_quantiles() {
    let (graph, root, _sizes, env) = workload();
    let reg = Arc::new(StatsRegistry::new());
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&reg)).unwrap();

    let mut ex = Executor::new(&graph).profiled();
    ex.eval(root, &env).unwrap();
    ex.record_stats(reg.as_ref());

    let fetch = |path: &str| -> String {
        let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };

    let metrics = fetch("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    let body = metrics.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.contains("# TYPE dmml_lang_exec_node_self_ns summary"), "{body}");
    for q in ["0.5", "0.95", "0.99"] {
        let series = format!("dmml_lang_exec_node_self_ns{{quantile=\"{q}\"}}");
        let line = body
            .lines()
            .find(|l| l.starts_with(&series))
            .unwrap_or_else(|| panic!("missing {series} in:\n{body}"));
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "unparseable sample {line:?}");
    }
    // Every line is a comment or a `name[{labels}] value` sample.
    for line in body.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(value.parse::<f64>().is_ok(), "{line:?}");
    }

    let json = fetch("/stats.json");
    let json_body = json.split("\r\n\r\n").nth(1).unwrap();
    let parsed = dm_obs::json::parse(json_body).expect("stats.json parses");
    assert!(
        parsed.get("histograms").unwrap().get("lang.exec.node_self_ns").is_some(),
        "{json_body}"
    );

    server.shutdown();
}
