//! Acceptance test for structured tracing across the execution stack: one
//! traced run at degree 4 under a 50% memory budget must produce a Chrome
//! trace with executor node spans, `dm-par` task spans carrying worker ids,
//! and buffer-pool spill instants — all well-formed and strictly nested per
//! thread.

use dmml::lang::{
    exec::Env, parser, physical::plan_with_inputs_memory, size::InputSizes, Executor, MemoryBudget,
};
use dmml::matrix::Matrix;
use dmml::obs::{json, trace};
use std::sync::{Mutex, MutexGuard};

// The trace collector is process-global: tests asserting on its contents
// serialize through this lock and start from drained buffers.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn traced_run_covers_exec_par_and_buffer_on_one_timeline() {
    let _guard = lock();
    trace::clear();
    let (graph, root) = parser::parse("sum(t(X) %*% (X + X))").unwrap();
    let x = dmml::data::matgen::dense_uniform(512, 96, -1.0, 1.0, 7);
    let mut sizes = InputSizes::new();
    sizes.declare("X", x.rows(), x.cols(), 1.0);
    // 50% of the input: X-sized operands overflow the budget, forcing
    // blocked kernels and pool spills.
    let budget = MemoryBudget::bytes(8 * x.rows() * x.cols() / 2);
    let plan = plan_with_inputs_memory(&graph, root, &sizes, 4, budget).unwrap();

    let mut env = Env::new();
    env.bind("X", Matrix::Dense(x));
    let mut exec = Executor::with_plan(&graph, plan).traced();
    assert!(exec.is_traced());
    let got = exec.eval(root, &env).unwrap().as_scalar().unwrap();
    trace::set_enabled(false);
    assert!(got.is_finite());

    let events = trace::take_events();

    // Executor node spans, named after the op labels.
    let exec_spans: Vec<_> =
        events.iter().filter(|e| e.cat == "exec" && e.name.starts_with("exec.")).collect();
    assert!(
        exec_spans.iter().any(|e| e.name == "exec.matmul"),
        "matmul node span present: {:?}",
        exec_spans.iter().map(|e| &e.name).collect::<Vec<_>>()
    );
    let mm = exec_spans.iter().find(|e| e.name == "exec.matmul").unwrap();
    assert_eq!(mm.arg("kernel").as_deref(), Some("blocked"), "planned blocked");
    assert_eq!(mm.arg("rows").as_deref(), Some("96"));
    assert_eq!(mm.arg("cols").as_deref(), Some("96"));
    assert!(mm.arg("flops").is_some());

    // dm-par task spans carrying worker ids, parented into the run.
    let tasks: Vec<_> = events.iter().filter(|e| e.name == "par.task").collect();
    assert!(!tasks.is_empty(), "blocked kernels dispatched parallel tasks");
    assert!(tasks.iter().all(|e| e.arg("worker").is_some()), "every task names its worker");
    assert!(tasks.iter().any(|e| e.parent != 0), "tasks nest under a spawning span");

    // Buffer-pool spill instants (plus their companions).
    for name in ["buffer.spill", "buffer.evict", "buffer.pin"] {
        assert!(events.iter().any(|e| e.name == name), "missing {name} instant");
    }
    let spill = events.iter().find(|e| e.name == "buffer.spill").unwrap();
    assert!(spill.arg("bytes").is_some(), "spill instants carry byte counts");

    // The Chrome export of the whole timeline is valid JSON with only
    // B/E/X/i phases and strictly nested begin/end pairs per thread.
    let doc = trace::chrome_trace(&events);
    let v = json::parse(&doc).expect("chrome trace parses");
    let arr = v.get("traceEvents").unwrap().as_arr().expect("traceEvents array");
    assert!(!arr.is_empty());
    let mut open: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    for ev in arr {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        assert!(matches!(ph, "B" | "E" | "X" | "i"), "phase {ph:?}");
        let tid = ev.get("tid").and_then(|t| t.as_f64()).expect("tid") as i64;
        match ph {
            "B" => open
                .entry(tid)
                .or_default()
                .push(ev.get("name").and_then(|n| n.as_str()).unwrap().to_owned()),
            "E" => {
                let innermost = open.entry(tid).or_default().pop();
                assert_eq!(
                    innermost.as_deref(),
                    ev.get("name").and_then(|n| n.as_str()),
                    "end matches innermost begin on tid {tid}"
                );
            }
            _ => {}
        }
    }
    for (tid, stack) in open {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
}

#[test]
fn untraced_executor_stays_silent() {
    // Without traced()/DMML_TRACE the executor must not emit node spans even
    // when the global collector is enabled: the span gate is per-executor.
    let _guard = lock();
    trace::set_enabled(true);
    trace::clear();
    let (graph, root) = parser::parse("sum(X + X)").unwrap();
    let x = dmml::data::matgen::dense_uniform(16, 4, -1.0, 1.0, 9);
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(x));
    let mut exec = Executor::new(&graph);
    assert!(!exec.is_traced());
    exec.eval(root, &env).unwrap();
    trace::set_enabled(false);
    let exec_events = trace::take_events().into_iter().filter(|e| e.cat == "exec").count();
    assert_eq!(exec_events, 0, "untraced executor emitted exec spans");
}
