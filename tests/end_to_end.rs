//! Cross-crate integration: raw relational data through featurization,
//! factorized training, compression, and the model registry — the full round
//! trip the tutorial's three pillars compose into.

use dmml::compress::planner::CompressionConfig;
use dmml::factorized::glm::{train_factorized, train_materialized};
use dmml::pipeline::encode::{ColumnSpec, Featurizer};
use dmml::pipeline::metrics;
use dmml::pipeline::split::train_test_split;
use dmml::pipeline::transform::{ImputeStrategy, Imputer, Pipeline, StandardScaler};
use dmml::prelude::*;
use std::collections::HashMap;

/// CSV -> table -> featurize -> pipeline -> train -> evaluate -> register.
#[test]
fn lifecycle_csv_to_registered_model() {
    let mut csv = String::from("x1,x2,group,label\n");
    for i in 0..300u64 {
        let x1 = (i % 20) as f64 / 20.0;
        let x2 = ((i * 7) % 13) as f64 / 13.0;
        let group = ["a", "b", "c"][(i % 3) as usize];
        let bump = (i % 3) as f64 * 0.5;
        let label = u8::from(x1 * 2.0 - x2 + bump > 1.0);
        if i % 23 == 0 {
            csv.push_str(&format!(",{x2:.4},{group},{label}\n"));
        } else {
            csv.push_str(&format!("{x1:.4},{x2:.4},{group},{label}\n"));
        }
    }
    let table = dmml::rel::csv::read_csv(csv.as_bytes(), "events").unwrap();
    assert_eq!(table.num_rows(), 300);

    let feat = Featurizer::fit(
        &table,
        &[
            ColumnSpec::Numeric("x1".into()),
            ColumnSpec::Numeric("x2".into()),
            ColumnSpec::OneHot("group".into()),
        ],
    )
    .unwrap();
    let x_raw = feat.transform(&table).unwrap();
    assert_eq!(x_raw.cols(), 5);
    let y: Vec<f64> = (0..300).map(|r| table.row(r).get("label").as_f64().unwrap()).collect();

    let split = train_test_split(300, 0.3, 1).unwrap();
    let mut pipe =
        Pipeline::new().add(Imputer::new(ImputeStrategy::Mean)).add(StandardScaler::new());
    let x_train = pipe.fit_transform(&x_raw.select_rows(&split.train)).unwrap();
    let x_test = pipe.transform(&x_raw.select_rows(&split.test)).unwrap();
    let y_train: Vec<f64> = split.train.iter().map(|&i| y[i]).collect();
    let y_test: Vec<f64> = split.test.iter().map(|&i| y[i]).collect();

    let model = LogisticRegression::fit(&x_train, &y_train, &LogRegConfig::default()).unwrap();
    let acc = metrics::accuracy(&model.predict(&x_test), &y_test);
    let auc = metrics::roc_auc(&model.predict_proba(&x_test), &y_test);
    assert!(acc > 0.85, "acc {acc}");
    assert!(auc > 0.9, "auc {auc}");

    let mut reg = ModelRegistry::new();
    let mut ms = HashMap::new();
    ms.insert("accuracy".into(), acc);
    let id = reg.register("e2e-logreg", HashMap::new(), ms, None, vec!["e2e".into()]);
    assert_eq!(reg.best_by("accuracy").unwrap().id, id);
}

/// Relational star schema -> NormalizedMatrix -> factorized training agrees
/// with the materialized path and beats it on physical data touched.
#[test]
fn factorized_training_from_relational_tables() {
    let star = dmml::data::star::generate(&dmml::data::star::StarConfig {
        fact_rows: 500,
        dim_rows: 20,
        fact_features: 2,
        dim_features: 3,
        noise: 0.0,
        seed: 5,
    });
    let (fact, dim) = dmml::data::star::to_tables(&star);

    let nm = NormalizedMatrix::from_tables(
        &fact,
        &["s0", "s1"],
        &[(&dim, "fk", "id", &["r0", "r1", "r2"][..])],
    )
    .unwrap();
    assert_eq!(nm.rows(), 500);
    assert_eq!(nm.cols(), 5);
    assert!(nm.redundancy_ratio() > 1.0);

    let gd = GdConfig { learning_rate: 0.3, max_iter: 2000, tol: 1e-10, ..Default::default() };
    let f = train_factorized(&nm, &star.y_regression, Family::Gaussian, &gd).unwrap();
    let m = train_materialized(&nm, &star.y_regression, Family::Gaussian, &gd).unwrap();
    for (a, b) in f.weights.iter().zip(&m.weights) {
        assert!((a - b).abs() < 1e-9);
    }
    // Recovered truth.
    for (w, t) in f.weights.iter().zip(&star.truth) {
        assert!((w - t).abs() < 1e-2, "weights {:?} truth {:?}", f.weights, star.truth);
    }
}

/// Compression composes with the matrix-free GLM trainer: gradient descent
/// over a CompressedMatrix equals gradient descent over the dense original.
#[test]
fn glm_training_on_compressed_matrix() {
    let x = dmml::data::matgen::low_cardinality(2000, 4, 6, 9);
    let truth = [1.0, -2.0, 0.5, 1.5];
    let y = dmml::matrix::ops::gemv(&x, &truth);
    let cm = CompressedMatrix::compress(&x, &CompressionConfig::default());
    assert!(cm.compression_ratio() > 2.0);

    let gd = GdConfig { learning_rate: 0.05, max_iter: 300, tol: 1e-12, ..Default::default() };
    let dense_fit = dmml::ml::glm::train_gd(
        |w| dmml::matrix::ops::gemv(&x, w),
        |r| dmml::matrix::ops::tmv(&x, r),
        &y,
        4,
        Family::Gaussian,
        &gd,
    )
    .unwrap();
    let comp_fit =
        dmml::ml::glm::train_gd(|w| cm.gemv(w), |r| cm.vecmat(r), &y, 4, Family::Gaussian, &gd)
            .unwrap();
    for (a, b) in dense_fit.weights.iter().zip(&comp_fit.weights) {
        assert!((a - b).abs() < 1e-9, "compressed and dense GD must coincide");
    }
}

/// The declarative layer evaluates models trained elsewhere: score a ridge
/// solution via a parsed expression and check against direct evaluation.
#[test]
fn declarative_layer_scores_trained_model() {
    use dmml::lang::{exec::Env, exec::Executor, parser};
    let d = dmml::data::labeled::regression(200, 3, 0.0, 11);
    let model = LinearRegression::fit(&d.x, &d.y, Solver::NormalEquations, 0.0).unwrap();

    // residual sum of squares via the DSL: sum((X %*% w + b - y) * (X %*% w + b - y))
    let (g, root) = parser::parse("sum((X %*% w + b - y) * (X %*% w + b - y))").unwrap();
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(d.x.clone()));
    env.bind("w", Matrix::Dense(Dense::column(&model.coefficients)));
    env.bind("y", Matrix::Dense(Dense::column(&d.y)));
    env.bind_scalar("b", model.intercept);
    let mut ex = Executor::new(&g);
    let rss = ex.eval(root, &env).unwrap().as_scalar().unwrap();
    let direct = model.mse(&d.x, &d.y) * d.y.len() as f64;
    assert!((rss - direct).abs() < 1e-6 * (1.0 + direct));
    assert!(rss < 1e-12, "noiseless data fits exactly");
}

/// Block matrices round-trip through the buffer pool and still compute.
#[test]
fn block_matrix_through_buffer_pool() {
    use dmml::buffer::{policy::PolicyKind, storage::MemStore};
    let x = dmml::data::matgen::dense_uniform(64, 32, -1.0, 1.0, 21);
    let bm = BlockMatrix::from_dense(&x, 16);
    // Pool holds only 4 of the 8 blocks at a time.
    let block_bytes = 16 * 16 * 8 + 16;
    let mut pool = BufferPool::new(4 * block_bytes, PolicyKind::Lru, MemStore::default());
    for (id, b) in bm.iter_blocks() {
        pool.put(PageKey::new(9, id.0 as u32, id.1 as u32), b.clone()).unwrap();
    }
    assert!(pool.stats().evictions > 0, "pressure must evict");

    // Reassemble the matrix by faulting blocks back in and compare gemv.
    let v: Vec<f64> = (0..32).map(|i| i as f64 * 0.1).collect();
    let mut out = vec![0.0; 64];
    for (id, _) in bm.iter_blocks() {
        let blk = pool.get(PageKey::new(9, id.0 as u32, id.1 as u32)).unwrap().unwrap();
        let r0 = id.0 * 16;
        let c0 = id.1 * 16;
        let seg = &v[c0..c0 + blk.cols()];
        let part = dmml::matrix::ops::gemv(&blk, seg);
        for (o, p) in out[r0..r0 + blk.rows()].iter_mut().zip(part) {
            *o += p;
        }
    }
    let expect = dmml::matrix::ops::gemv(&x, &v);
    for (a, b) in out.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-9);
    }
}
