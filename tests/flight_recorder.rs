//! End-to-end acceptance for the per-request flight recorder (ISSUE 10):
//! a scored request leaves a `/debug/requests` record whose per-phase
//! latency attribution accounts for its wall time, a deliberately-slow
//! request (threshold forced to 1 ns) is retained in `/debug/slow`, its
//! retained span buffer renders as a loadable, well-nested Chrome trace on
//! `/debug/trace?id=`, and the `serve.phase.*` histograms appear on a live
//! `/metrics` scrape — all without restarting the server or setting
//! `DMML_TRACE`.

use dmml::obs::json;
use dmml::obs::serve::MetricsServer;
use dmml::obs::StatsRegistry;
use dmml::serve::{Request, Response, ScoreResult, ScoringClient, ScoringServer, ServeConfig};
use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

const PROGRAM: &str = "sum(t(X) %*% (X + X))";
const N: usize = 60;
const D: usize = 7;

fn score_req(tenant: &str) -> Request {
    let data: Vec<f64> = (0..N * D).map(|i| ((i * 13) % 17) as f64 * 0.31 - 2.0).collect();
    Request::score(tenant, PROGRAM).matrix("X", N, D, data)
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let (head, body) = buf.split_once("\r\n\r\n").expect("HTTP response has a header block");
    (head.to_owned(), body.to_owned())
}

/// Every `B` must close with a matching `E` per tid — the structural
/// property Perfetto needs to render the timeline.
fn assert_loadable_chrome_trace(doc: &json::Json) -> usize {
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    let mut open: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph present");
        let tid = ev.get("tid").and_then(|t| t.as_f64()).expect("tid present") as i64;
        match ph {
            "B" => {
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap().to_owned();
                open.entry(tid).or_default().push(name);
            }
            "E" => {
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap();
                assert_eq!(
                    open.entry(tid).or_default().pop().as_deref(),
                    Some(name),
                    "E matches innermost open B"
                );
            }
            _ => {}
        }
    }
    for (tid, o) in &open {
        assert!(o.is_empty(), "unclosed spans on tid {tid}: {o:?}");
    }
    events.len()
}

#[test]
fn slow_request_is_captured_with_phases_and_chrome_trace() {
    let registry = Arc::new(StatsRegistry::new());
    let mut cfg = ServeConfig::for_tests();
    // Everything is "slow" against a 1 ns bar: the deliberate slow request.
    cfg.slow_threshold = Some(Duration::from_nanos(1));
    let server = ScoringServer::start(cfg, Arc::clone(&registry)).unwrap();
    let metrics = MetricsServer::start_with_flight(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Some(server.flight()),
    )
    .unwrap();

    // Score twice: a cold compile and a plan-cache hit, so both signatures
    // land in the recorder.
    let mut c = ScoringClient::connect(server.addr()).unwrap();
    let (resp, rid) = c.request_with_rid(&score_req("acme")).unwrap();
    let rid = rid.expect("server assigns request ids");
    assert!(matches!(resp, Response::Score { result: ScoreResult::Scalar(_), .. }), "{resp:?}");
    let (resp2, rid2) = c.request_with_rid(&score_req("acme")).unwrap();
    let rid2 = rid2.unwrap();
    assert!(rid2 > rid, "request ids are dense and increasing");
    let Response::Score { cache_hit: true, .. } = resp2 else {
        panic!("identical repeat must hit the plan cache, got {resp2:?}");
    };

    // /debug/requests: both records present, phases attributed. The record
    // is deposited just after the response frame is flushed, so the client
    // can observe the response before the recorder does — poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (head, body) = loop {
        let (head, body) = http_get(metrics.addr(), "/debug/requests?n=8");
        let both = [rid, rid2].iter().all(|id| body.contains(&format!("\"id\":{id},")));
        if both || std::time::Instant::now() > deadline {
            break (head, body);
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(head.contains("200 OK"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    // The phase sum must account for at least 90% of the recorded wall
    // time — the acceptance bar for "no unattributed gap".
    let doc = json::parse(&body).expect("debug/requests parses");
    let reqs = doc.get("requests").and_then(|r| r.as_arr()).expect("requests array");
    let find = |id: u64| {
        reqs.iter()
            .find(|r| r.get("id").and_then(|v| v.as_f64()) == Some(id as f64))
            .unwrap_or_else(|| panic!("rid {id} missing from /debug/requests: {body}"))
    };
    let rec = find(rid);
    assert_eq!(rec.get("tenant").and_then(|t| t.as_str()), Some("acme"));
    assert_eq!(rec.get("cache_hit"), Some(&json::Json::Bool(false)), "{body}");
    assert_eq!(find(rid2).get("cache_hit"), Some(&json::Json::Bool(true)), "{body}");
    let total = rec.get("total_ns").and_then(|t| t.as_f64()).unwrap();
    let phase_sum = rec.get("phase_sum_ns").and_then(|t| t.as_f64()).unwrap();
    assert!(total > 0.0);
    assert!(phase_sum <= total * 1.1, "phases cannot exceed wall time: {body}");
    // The phase sum must account for at least 90% of the recorded wall
    // time — the acceptance bar for "no unattributed gap". A preemption
    // between two phase timers charges the gap to neither, so on a loaded
    // test box any single request can miss the bar; require that a fresh
    // request achieves it rather than betting on one sample.
    let mut best_ratio: f64 = phase_sum / total;
    for _ in 0..20 {
        if best_ratio >= 0.9 {
            break;
        }
        let (_, rid_n) = c.request_with_rid(&score_req("acme")).unwrap();
        let rid_n = rid_n.unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let rec_n = loop {
            if let Some(r) = server.flight().get(rid_n) {
                break r;
            }
            assert!(std::time::Instant::now() < deadline, "rid {rid_n} never recorded");
            std::thread::sleep(Duration::from_millis(5));
        };
        best_ratio = best_ratio.max(rec_n.phase_sum_ns() as f64 / rec_n.total_ns as f64);
    }
    assert!(
        best_ratio >= 0.9,
        "no request achieved >=90% phase attribution (best {best_ratio:.3}): {body}"
    );
    let phases = rec.get("phases").expect("phases object");
    for name in ["decode", "cache_lookup", "compile", "execute", "encode"] {
        let ns = phases.get(name).and_then(|v| v.as_f64());
        assert!(ns.is_some(), "phase {name} missing: {body}");
    }
    assert!(
        phases.get("compile").and_then(|v| v.as_f64()).unwrap() > 0.0,
        "cold request compiled: {body}"
    );

    // /debug/slow: with the 1 ns bar, both requests are retained, worst
    // first, and the threshold is reported as explicit (not self-tuned).
    let (head, body) = http_get(metrics.addr(), "/debug/slow");
    assert!(head.contains("200 OK"), "{head}");
    let doc = json::parse(&body).expect("debug/slow parses");
    assert_eq!(doc.get("threshold_ns").and_then(|t| t.as_f64()), Some(1.0), "{body}");
    assert_eq!(doc.get("self_tuned"), Some(&json::Json::Bool(false)), "{body}");
    let slow = doc.get("slow").and_then(|s| s.as_arr()).expect("slow array");
    assert!(slow.len() >= 2, "every request exceeds 1 ns: {body}");
    let totals: Vec<f64> =
        slow.iter().map(|r| r.get("total_ns").and_then(|t| t.as_f64()).unwrap()).collect();
    assert!(totals.windows(2).all(|w| w[0] >= w[1]), "slow ring is worst-first: {totals:?}");

    // /debug/trace?id=: one connected, loadable Chrome timeline for the
    // cold request — the request root span plus its phase spans, and the
    // executor's per-node spans nested under the execute phase.
    let (head, body) = http_get(metrics.addr(), &format!("/debug/trace?id={rid}"));
    assert!(head.contains("200 OK"), "{head}");
    let doc = json::parse(&body).expect("debug/trace parses");
    let n_events = assert_loadable_chrome_trace(&doc);
    assert!(n_events > 0, "retained span buffer is non-empty");
    let names: Vec<&str> = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(names.contains(&"serve.request"), "root span present: {names:?}");
    for site in ["serve.phase.decode", "serve.phase.compile", "serve.phase.execute"] {
        assert!(names.contains(&site), "{site} span present: {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("exec.")),
        "executor spans nest inside the request timeline: {names:?}"
    );
    // An id the recorder never issued 404s.
    let (head, _) = http_get(metrics.addr(), "/debug/trace?id=999999999");
    assert!(head.contains("404"), "{head}");

    // Live /metrics: the per-phase histogram family is exposed.
    let (_, scrape) = http_get(metrics.addr(), "/metrics");
    for family in
        ["dmml_serve_phase_decode", "dmml_serve_phase_compile", "dmml_serve_phase_execute"]
    {
        assert!(scrape.contains(family), "missing {family} in scrape: {scrape}");
    }

    metrics.shutdown();
    server.shutdown();
}

/// Without an explicit threshold the recorder self-tunes: nothing is slow
/// until a latency distribution exists, and the `/debug/slow` body says so.
#[test]
fn self_tuned_threshold_reports_absent_before_samples() {
    let registry = Arc::new(StatsRegistry::new());
    let server = ScoringServer::start(ServeConfig::for_tests(), Arc::clone(&registry)).unwrap();
    let metrics = MetricsServer::start_with_flight(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Some(server.flight()),
    )
    .unwrap();
    let mut c = ScoringClient::connect(server.addr()).unwrap();
    c.ping("acme").unwrap();
    let (head, body) = http_get(metrics.addr(), "/debug/slow");
    assert!(head.contains("200 OK"), "{head}");
    let doc = json::parse(&body).expect("debug/slow parses");
    assert_eq!(doc.get("threshold_ns"), Some(&json::Json::Null), "{body}");
    assert_eq!(doc.get("self_tuned"), Some(&json::Json::Bool(true)), "{body}");
    metrics.shutdown();
    server.shutdown();
}
