//! Run the multi-tenant scoring server until interrupted.
//!
//! ```text
//! DMML_SERVE_ADDR=127.0.0.1:0 DMML_METRICS_ADDR=127.0.0.1:0 \
//!     cargo run --release --example scoring_server
//! ```
//!
//! Prints `scoring listening on <addr>` (and, when `DMML_METRICS_ADDR` is
//! set, `metrics listening on http://<addr>/metrics`) so scripts like
//! `scripts/loadgen.py` can discover ephemeral ports. Every knob is an
//! environment variable — see `docs/OPERATIONS.md` for the full table.
//! Stops after `DMML_SERVE_HOLD_MS` milliseconds when set (CI smoke runs);
//! otherwise serves forever.

use dmml::obs::serve::MetricsServer;
use dmml::obs::StatsRegistry;
use dmml::serve::{ScoringServer, ServeConfig};
use std::sync::Arc;

fn main() {
    let registry = Arc::new(StatsRegistry::new());
    let cfg = ServeConfig::from_env();
    let server = match ScoringServer::start(cfg, Arc::clone(&registry)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", server.banner());
    // Mount the server's flight recorder so /debug/requests, /debug/slow
    // and /debug/trace?id= serve live request records.
    let metrics = MetricsServer::from_env_with_flight(Arc::clone(&registry), Some(server.flight()))
        .map(|r| match r {
            Ok(m) => {
                println!("metrics listening on http://{}/metrics", m.addr());
                m
            }
            Err(e) => {
                eprintln!("metrics bind failed: {e}");
                std::process::exit(1);
            }
        });

    match std::env::var("DMML_SERVE_HOLD_MS").ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    if let Some(m) = metrics {
        m.shutdown();
    }
    server.shutdown();
}
