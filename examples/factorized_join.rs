//! Factorized learning over a star-schema join: train a GLM over normalized
//! tables without materializing the join, compare against the materialized
//! baseline, and consult the join-avoidance rules.
//!
//! Run with: `cargo run --release --example factorized_join`

use dmml::factorized::glm::{train_factorized, train_materialized};
use dmml::factorized::hamlet::{profile_tables, risk_rule, tuple_ratio_rule};
use dmml::prelude::*;
use std::time::Instant;

fn main() {
    // A high-redundancy star schema: 200k fact rows over a 100-row dimension
    // table (tuple ratio 2000).
    let cfg = dmml::data::star::StarConfig {
        fact_rows: 200_000,
        dim_rows: 100,
        fact_features: 2,
        dim_features: 20,
        noise: 0.01,
        seed: 7,
    };
    let d = dmml::data::star::generate(&cfg);
    let nm = NormalizedMatrix::new(
        d.fact.clone(),
        vec![DimTable::new(d.dim.clone(), d.fk.clone()).expect("keys in range")],
    )
    .expect("valid star schema");

    println!(
        "star schema: {} fact rows x {} logical features (redundancy ratio {:.1}x)",
        nm.rows(),
        nm.cols(),
        nm.redundancy_ratio()
    );

    // Morpheus-style operators agree with the materialized join.
    let w: Vec<f64> = (0..nm.cols()).map(|i| (i as f64 * 0.1).sin()).collect();
    let t0 = Instant::now();
    let fact_gemv = nm.gemv(&w);
    let fact_time = t0.elapsed();
    let t1 = Instant::now();
    let mat = nm.materialize();
    let mat_gemv = dmml::matrix::ops::gemv(&mat, &w);
    let mat_time = t1.elapsed();
    let max_diff = fact_gemv.iter().zip(&mat_gemv).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!("gemv: factorized {fact_time:?} vs materialize+dense {mat_time:?} (max diff {max_diff:.1e})");

    // Train linear regression both ways with identical GD settings.
    let gd = GdConfig { learning_rate: 0.1, max_iter: 200, tol: 1e-9, ..Default::default() };
    let t2 = Instant::now();
    let f_fit =
        train_factorized(&nm, &d.y_regression, Family::Gaussian, &gd).expect("factorized fit");
    let f_time = t2.elapsed();
    let t3 = Instant::now();
    let m_fit =
        train_materialized(&nm, &d.y_regression, Family::Gaussian, &gd).expect("materialized fit");
    let m_time = t3.elapsed();
    let weight_gap =
        f_fit.weights.iter().zip(&m_fit.weights).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!(
        "GLM training ({} epochs): factorized {f_time:?} vs materialized {m_time:?}",
        f_fit.iterations
    );
    println!("  identical iterates: max weight gap {weight_gap:.1e}");
    println!(
        "  speedup {:.1}x at tuple ratio {:.0}",
        m_time.as_secs_f64() / f_time.as_secs_f64().max(1e-12),
        cfg.fact_rows as f64 / cfg.dim_rows as f64
    );

    // Join avoidance: with 2000 training rows per dimension row, the FK alone
    // is statistically safe — the rules should both say "avoid".
    let profile = profile_tables(&nm)[0];
    println!(
        "hamlet: tuple ratio {:.0}; tuple-ratio rule -> {:?}, risk rule -> {:?}",
        profile.tuple_ratio(),
        tuple_ratio_rule(&profile, 20.0),
        risk_rule(&profile, 10.0),
    );
}
