//! Compressed linear algebra in action: compress a low-cardinality feature
//! matrix, report the plan and ratio, then train a ridge regression whose
//! conjugate-gradient iterations run *entirely on the compressed matrix*.
//!
//! Run with: `cargo run --release --example compressed_regression`

use dmml::compress::planner::CompressionConfig;
use dmml::matrix::solve::{conjugate_gradient, CgOptions};
use dmml::prelude::*;
use std::time::Instant;

fn main() {
    // A realistic "warehouse extract": categorical-coded and clustered
    // columns (highly compressible) plus one noisy measure column.
    let n = 50_000;
    let cat = dmml::data::matgen::low_cardinality(n, 3, 8, 11);
    let clustered = dmml::data::matgen::clustered(n, 2, 6, 512, 12);
    let noise = dmml::data::matgen::dense_uniform(n, 1, -1.0, 1.0, 13);
    let x = cat.hcat(&clustered).hcat(&noise);

    // Ground-truth linear model for the labels.
    let truth: Vec<f64> = vec![0.5, -1.0, 2.0, 1.5, -0.5, 3.0];
    let y = dmml::matrix::ops::gemv(&x, &truth);

    // Compress with the sampling-based planner.
    let t0 = Instant::now();
    let cm = CompressedMatrix::compress(&x, &CompressionConfig::default());
    let compress_time = t0.elapsed();
    println!("compressed {n}x{} matrix in {compress_time:?}", x.cols());
    println!(
        "  size: {} -> {} bytes (ratio {:.1}x)",
        cm.uncompressed_bytes(),
        cm.size_bytes(),
        cm.compression_ratio()
    );
    for g in cm.groups() {
        println!("  group {:?} encoded as {:?} ({} bytes)", g.cols(), g.encoding(), g.size_bytes());
    }

    // Ridge regression via CG on the normal equations, with every
    // matrix-vector product executed on the compressed representation.
    let lambda = 1e-6 * n as f64;
    let xty = cm.vecmat(&y);
    let t1 = Instant::now();
    let w = conjugate_gradient(
        |v| {
            let xv = cm.gemv(v);
            let mut g = cm.vecmat(&xv);
            for (gi, vi) in g.iter_mut().zip(v) {
                *gi += lambda * vi;
            }
            g
        },
        &xty,
        CgOptions { max_iter: 500, tol: 1e-8 },
    )
    .expect("CG converges on ridge-regularized system");
    let solve_time = t1.elapsed();

    println!("solved ridge regression on compressed data in {solve_time:?}");
    println!("  recovered weights: {w:.3?}");
    println!("  ground truth:      {truth:.3?}");
    let max_err = w.iter().zip(&truth).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!("  max coefficient error: {max_err:.2e}");
    assert!(max_err < 1e-2, "compressed training must recover the truth");

    // Sanity: compressed kernels agree with dense.
    let dense_pred = dmml::matrix::ops::gemv(&x, &w);
    let comp_pred = cm.gemv(&w);
    let diff = dense_pred.iter().zip(&comp_pred).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!("  max dense/compressed prediction divergence: {diff:.2e}");
}
