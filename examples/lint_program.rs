//! The static analyzer on a buggy script: one pass over the expression DAG
//! collects every problem at once — shape mismatches, domain violations,
//! dead code, costly chain orders, and fusion opportunities — each anchored
//! to the node that caused it.
//!
//! Run with: `cargo run --release --example lint_program`

use dmml::lang::analyze::{analyze, analyze_with_memory, codes, verify_rewrite, Severity};
use dmml::lang::rewrite::optimize;
use dmml::lang::size::InputSizes;
use dmml::lang::{AggOp, EwiseOp, Graph, MemoryBudget, UnaryOp};

fn main() {
    // A script with several independent mistakes, built through the Graph
    // API (the parser would accept it too — these are semantic, not
    // syntactic, errors):
    //
    //   bad_mm = X %*% X          -- inner dimensions disagree (100x10 twice)
    //   bad_log = log(-2.5)       -- domain violation on a constant
    //   risky = sqrt(abs(X) - 5)  -- possibly negative under the radical
    //   chain = (X %*% Y) %*% u   -- 21M multiplies where 40K suffice
    //   gram = t(X) %*% X         -- unfused crossprod pattern
    //   orphan = colSums(Y)       -- computed but never used
    let mut g = Graph::new();
    let x = g.input("X");
    let y = g.input("Y");
    let u = g.input("u");

    let bad_mm = g.matmul(x, x);
    let neg = g.constant(-2.5);
    let bad_log = g.unary(UnaryOp::Log, neg);
    let absx = g.unary(UnaryOp::Abs, x);
    let five = g.constant(5.0);
    let shifted = g.ewise(EwiseOp::Sub, absx, five);
    let risky = g.unary(UnaryOp::Sqrt, shifted);
    let xy = g.matmul(x, y);
    let chain = g.matmul(xy, u);
    let t = g.transpose(x);
    let gram = g.matmul(t, x);

    // Fold everything into one root so it is all reachable...
    let s1 = g.agg(AggOp::Sum, bad_mm);
    let s2 = g.ewise(EwiseOp::Mul, s1, bad_log);
    let s3 = g.agg(AggOp::Sum, risky);
    let s4 = g.ewise(EwiseOp::Add, s2, s3);
    let s5 = g.agg(AggOp::Sum, chain);
    let s6 = g.ewise(EwiseOp::Add, s4, s5);
    let s7 = g.agg(AggOp::Sum, gram);
    let root = g.ewise(EwiseOp::Add, s6, s7);
    // ...except the orphan, which dangles unreferenced.
    let orphan = g.agg(AggOp::ColSums, y);
    let _ = orphan;

    let mut inputs = InputSizes::new();
    inputs.declare("X", 100, 10, 1.0);
    inputs.declare("Y", 10, 1000, 1.0);
    inputs.declare("u", 1000, 1, 1.0);

    println!("program: {}", g.render(root));
    println!();

    let report = analyze(&g, root, &inputs);
    println!("{}", report.render(&g));
    println!(
        "{} findings: {} errors, {} warnings, {} hints; distinct codes: {:?}",
        report.diagnostics.len(),
        report.error_count(),
        report.with_severity(Severity::Warning).count(),
        report.with_severity(Severity::Hint).count(),
        report.codes(),
    );
    assert!(report.diagnostics.iter().any(|d| d.code == codes::SHAPE_MISMATCH));
    assert!(report.diagnostics.iter().any(|d| d.code == codes::DOMAIN_VIOLATION));
    assert!(report.diagnostics.iter().any(|d| d.code == codes::DEAD_NODE));
    assert!(report.codes().len() >= 5, "the demo exercises at least five codes");

    // Under a memory budget the analyzer also certifies the plan's live-set
    // peak: a program whose values all fit individually can still overflow
    // when several are live at once, and W103 pins the step where it happens.
    println!();
    let mut big = Graph::new();
    let bx = big.input("X");
    let by = big.input("Y");
    let bz = big.ewise(EwiseOp::Add, bx, by);
    let broot = big.agg(AggOp::Sum, bz);
    let mut big_inputs = InputSizes::new();
    big_inputs.declare("X", 256, 256, 1.0); // 512 KiB each
    big_inputs.declare("Y", 256, 256, 1.0);
    let budget = MemoryBudget::bytes(700_000); // fits any one value, not three
    let mem = analyze_with_memory(&big, broot, &big_inputs, 1, budget);
    println!("memory lint of {} under a 700 KB budget:", big.render(broot));
    println!("{}", mem.render(&big));
    assert!(mem.diagnostics.iter().any(|d| d.code == codes::PLAN_EXCEEDS_BUDGET));

    // A clean subprogram passes the linter, survives the optimizer, and the
    // rewrite-safety differ signs off on the transformation.
    println!();
    let clean_root = s7; // sum(t(X) %*% X)
    let clean = analyze(&g, clean_root, &inputs);
    let clean_errors = clean.error_count();
    println!("clean subprogram {} has {clean_errors} errors", g.render(clean_root));
    let (og, oroot, stats) = optimize(&g, clean_root, &inputs).expect("optimizes");
    verify_rewrite(&g, clean_root, &og, oroot, &inputs).expect("rewrite is shape-safe");
    println!(
        "optimized to {} ({} rewrites); differ confirms the root shape is preserved",
        og.render(oroot),
        stats.total(),
    );
}
