//! Model-selection management: compare grid search, random search,
//! successive halving, and Hyperband on a real logistic-regression tuning
//! problem, where "budget" means the fraction of training epochs.
//!
//! Run with: `cargo run --release --example model_search`

use dmml::modelsel::search::{grid_search, hyperband, random_search, successive_halving};
use dmml::pipeline::split::train_test_split;
use dmml::prelude::*;
use std::time::Instant;

fn main() {
    let data = dmml::data::labeled::classification(4000, 8, 3.0, 21);
    let split = train_test_split(data.x.rows(), 0.3, 5).expect("split");
    let x_train = data.x.select_rows(&split.train);
    let y_train: Vec<f64> = split.train.iter().map(|&i| data.y[i]).collect();
    let x_val = data.x.select_rows(&split.test);
    let y_val: Vec<f64> = split.test.iter().map(|&i| data.y[i]).collect();

    // The trainer: budget scales the epoch count, so a 1/9-budget run is ~9x
    // cheaper — the lever early-stopping searches exploit.
    let full_epochs = 600usize;
    let trainer = |p: &Params, budget: f64| -> f64 {
        let cfg = LogRegConfig {
            learning_rate: p.get("lr"),
            l2: p.get("l2"),
            max_iter: ((full_epochs as f64 * budget).ceil() as usize).max(1),
            tol: 0.0, // fixed-epoch training so budget is honored exactly
        };
        match LogisticRegression::fit(&x_train, &y_train, &cfg) {
            Ok(m) => m.accuracy(&x_val, &y_val),
            Err(_) => 0.0,
        }
    };

    let grid_space = ParamSpace::new()
        .grid("lr", &[0.001, 0.01, 0.1, 1.0, 5.0])
        .grid("l2", &[0.0, 0.001, 0.01, 0.1]);
    let rand_space = ParamSpace::new().log_uniform("lr", 1e-3, 5.0).log_uniform("l2", 1e-5, 0.5);

    let t0 = Instant::now();
    let grid = grid_search(&grid_space, trainer);
    let grid_t = t0.elapsed();

    let t1 = Instant::now();
    let rand = random_search(&rand_space, 20, 3, trainer);
    let rand_t = t1.elapsed();

    let t2 = Instant::now();
    let sh = successive_halving(&rand_space, 27, 3, 3, trainer);
    let sh_t = t2.elapsed();

    let t3 = Instant::now();
    let hb = hyperband(&rand_space, 9, 3, 3, trainer);
    let hb_t = t3.elapsed();

    println!("strategy            evals  budget  val-acc  wall");
    for (name, r, t) in [
        ("grid (5x4)", &grid, grid_t),
        ("random (20)", &rand, rand_t),
        ("succ-halving (27)", &sh, sh_t),
        ("hyperband (9)", &hb, hb_t),
    ] {
        println!(
            "{name:<19} {:>5} {:>7.1} {:>8.3} {:>7.0?}",
            r.evaluations.len(),
            r.total_budget,
            r.best_score,
            t
        );
    }
    println!(
        "\nbest configs: grid lr={:.3} l2={:.4} | sh lr={:.3} l2={:.4}",
        grid.best_params.get("lr"),
        grid.best_params.get("l2"),
        sh.best_params.get("lr"),
        sh.best_params.get("l2"),
    );
    println!(
        "successive halving explored {} configs for {:.0}% of grid's budget",
        27,
        100.0 * sh.total_budget / grid.total_budget
    );
}
