//! Quickstart: end-to-end lifecycle over raw relational data.
//!
//! CSV-like table -> featurization -> transformation pipeline -> train/test
//! split -> logistic regression -> metrics -> model registry.
//!
//! Run with: `cargo run --release --example quickstart`

use dmml::modelsel::ModelRegistry;
use dmml::pipeline::encode::{ColumnSpec, Featurizer};
use dmml::pipeline::metrics;
use dmml::pipeline::split::train_test_split;
use dmml::pipeline::transform::{ImputeStrategy, Imputer, Pipeline, StandardScaler};
use dmml::prelude::*;
use std::collections::HashMap;

fn main() {
    // 1. Raw data arrives as a relational table (here: parsed from CSV text;
    //    rows are generated deterministically, with label ~ income + city and
    //    occasional missing incomes).
    let mut csv = String::from("age,income,city,label\n");
    for i in 0..400u64 {
        let age = 20 + (i * 7) % 45;
        let income = 25_000 + (i * 13_577) % 80_000;
        let city = ["paris", "lyon", "tokyo"][(i % 3) as usize];
        let score = income as f64 / 40_000.0 + if city == "tokyo" { 1.0 } else { 0.0 };
        let label = u8::from(score > 1.8);
        if i % 17 == 0 {
            csv.push_str(&format!("{age},,{city},{label}\n")); // missing income
        } else {
            csv.push_str(&format!("{age},{income},{city},{label}\n"));
        }
    }
    let table = dmml::rel::csv::read_csv(csv.as_bytes(), "customers").expect("valid csv");
    println!("loaded table '{}' with {} rows", table.name(), table.num_rows());

    // 2. Featurize: numeric passthrough + one-hot city.
    let featurizer = Featurizer::fit(
        &table,
        &[
            ColumnSpec::Numeric("age".into()),
            ColumnSpec::Numeric("income".into()),
            ColumnSpec::OneHot("city".into()),
        ],
    )
    .expect("featurizer fits");
    let x_raw = featurizer.transform(&table).expect("featurize");
    println!("features: {:?}", featurizer.feature_names());

    let y: Vec<f64> = (0..table.num_rows())
        .map(|r| table.row(r).get("label").as_f64().expect("label present"))
        .collect();

    // 3. Split before fitting the pipeline: statistics must come from the
    //    training side only.
    let split = train_test_split(x_raw.rows(), 0.25, 42).expect("split");
    let x_train = x_raw.select_rows(&split.train);
    let x_test = x_raw.select_rows(&split.test);
    let y_train: Vec<f64> = split.train.iter().map(|&i| y[i]).collect();
    let y_test: Vec<f64> = split.test.iter().map(|&i| y[i]).collect();

    // 4. Pipeline: impute missing incomes, then standardize.
    let mut pipe =
        Pipeline::new().add(Imputer::new(ImputeStrategy::Mean)).add(StandardScaler::new());
    let x_train_t = pipe.fit_transform(&x_train).expect("pipeline fit");
    let x_test_t = pipe.transform(&x_test).expect("pipeline transform");

    // 5. Train.
    let model = LogisticRegression::fit(&x_train_t, &y_train, &LogRegConfig::default())
        .expect("training succeeds");
    println!(
        "trained logistic regression in {} iterations (converged: {})",
        model.iterations, model.converged
    );

    // 6. Evaluate.
    let probs = model.predict_proba(&x_test_t);
    let preds = model.predict(&x_test_t);
    let acc = metrics::accuracy(&preds, &y_test);
    let auc = metrics::roc_auc(&probs, &y_test);
    println!("test accuracy = {acc:.3}, AUC = {auc:.3}");

    // 7. Record the experiment in the registry.
    let mut registry = ModelRegistry::new();
    let mut params = HashMap::new();
    params.insert("learning_rate".into(), LogRegConfig::default().learning_rate);
    let mut ms = HashMap::new();
    ms.insert("accuracy".into(), acc);
    ms.insert("auc".into(), auc);
    let id = registry.register("quickstart-logreg", params, ms, None, vec!["quickstart".into()]);
    println!(
        "registered model #{id}; best by accuracy: {:?}",
        registry.best_by("accuracy").map(|r| r.id)
    );
}
