//! Score a program against a running scoring server.
//!
//! ```text
//! cargo run --release --example scoring_client -- 127.0.0.1:7878
//! ```
//!
//! Connects, pings, then scores `sum(t(X) %*% (X %*% v))` twice with the
//! same shapes — the second response must report a plan-cache hit. A tiny
//! end-to-end demonstration of the protocol in `crates/serve/src/protocol.rs`;
//! `scripts/loadgen.py` is the multi-tenant load version of this.

use dmml::serve::{Request, Response, ScoreResult, ScoringClient};

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let mut client = match ScoringClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e} (start examples/scoring_server.rs first)");
            std::process::exit(1);
        }
    };
    client.ping("demo").expect("ping");
    println!("connected to {addr}");

    let (n, d) = (200, 16);
    let x: Vec<f64> = (0..n * d).map(|i| ((i % 23) as f64) * 0.17 - 1.9).collect();
    let v: Vec<f64> = (0..d).map(|i| (i as f64) * 0.05 - 0.3).collect();
    let req =
        Request::score("demo", "sum(t(X) %*% (X %*% v))").matrix("X", n, d, x).matrix("v", d, 1, v);

    for round in 1..=2 {
        match client.request(&req).expect("request") {
            Response::Score {
                result: ScoreResult::Scalar(s), cache_hit, blocked_nodes, ..
            } => {
                println!(
                    "round {round}: score = {s:.6} (plan cache {}, {blocked_nodes} blocked node(s))",
                    if cache_hit { "hit" } else { "miss" }
                );
            }
            other => {
                eprintln!("unexpected response: {other:?}");
                std::process::exit(1);
            }
        }
    }
}
