//! The declarative layer end to end: parse an R-like script fragment,
//! optimize the expression DAG (fusion, CSE, chain reordering), pick physical
//! kernels from sparsity estimates, and execute — comparing flop counts with
//! and without the optimizer.
//!
//! Run with: `cargo run --release --example declarative_optimizer`

use dmml::lang::exec::{Env, Executor};
use dmml::lang::parser;
use dmml::lang::physical;
use dmml::lang::rewrite::optimize;
use dmml::lang::size::InputSizes;
use dmml::prelude::*;

fn main() {
    // The gradient-norm expression of ridge regression:
    //   sum(t(X) %*% (X %*% w) * t(X) %*% (X %*% w))  -- with a shared subtree
    // plus a Gram-matrix term. Written naively, it contains duplicate work,
    // an unfused t(X)%*%X, and a badly associated chain.
    let src = "sum((t(X) %*% (X %*% w)) * (t(X) %*% (X %*% w))) + sum(t(X) %*% X)";
    let (graph, root) = parser::parse(src).expect("parses");
    println!("source: {src}");
    println!("naive plan: {}", graph.render(root));

    // Declared input sizes drive size-dependent rewrites.
    let (n, d) = (5000, 30);
    let mut sizes = InputSizes::new();
    sizes.declare("X", n, d, 1.0);
    sizes.declare("w", d, 1, 1.0);

    let (opt_graph, opt_root, stats) = optimize(&graph, root, &sizes).expect("optimizes");
    println!("optimized plan: {}", opt_graph.render(opt_root));
    println!(
        "rewrites: cse={} tmv_fused={} crossprod_fused={} sumsq_fused={} chains_reordered={}",
        stats.cse_merged,
        stats.tmv_fused,
        stats.crossprod_fused,
        stats.sumsq_fused,
        stats.chains_reordered
    );

    // Execute both plans on real data and compare work.
    let x = dmml::data::matgen::dense_uniform(n, d, -1.0, 1.0, 3);
    let w: Vec<f64> = (0..d).map(|i| (i as f64 / d as f64) - 0.5).collect();
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(x));
    env.bind("w", Matrix::Dense(Dense::column(&w)));

    let mut naive = Executor::new(&graph);
    let naive_val = naive.eval(root, &env).expect("naive executes").as_scalar().expect("scalar");
    let mut opt = Executor::new(&opt_graph);
    let opt_val =
        opt.eval(opt_root, &env).expect("optimized executes").as_scalar().expect("scalar");

    println!("naive     result {naive_val:.4}  flops {:>12}", naive.stats().flops);
    println!("optimized result {opt_val:.4}  flops {:>12}", opt.stats().flops);
    println!(
        "flop reduction: {:.1}x (results agree to {:.1e})",
        naive.stats().flops as f64 / opt.stats().flops.max(1) as f64,
        (naive_val - opt_val).abs() / naive_val.abs().max(1.0)
    );

    // Physical planning on a sparse input flips the kernels.
    let (g2, r2) = parser::parse("sum(S %*% w)").expect("parses");
    let mut sparse_sizes = InputSizes::new();
    sparse_sizes.declare("S", n, d, 0.02);
    sparse_sizes.declare("w", d, 1, 1.0);
    let plan = physical::plan_with_inputs(&g2, r2, &sparse_sizes).expect("plans");
    for id in g2.reachable(r2) {
        println!("node {id} ({}) -> {:?}", g2.render(id), plan.kernel(id));
    }
}
