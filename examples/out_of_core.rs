//! Out-of-core linear algebra: a matrix larger than the buffer pool's byte
//! budget, tiled into blocks, spilled to disk, and multiplied by streaming
//! blocks through the pool — the block-management story of declarative ML
//! systems.
//!
//! Run with: `cargo run --release --example out_of_core`

use dmml::buffer::{
    policy::PolicyKind,
    storage::{FileStore, Storage},
};
use dmml::prelude::*;

fn main() {
    // 2048 x 512 matrix in 128x128 tiles = 64 blocks of ~128 KiB.
    let (rows, cols, tile) = (2048usize, 512usize, 128usize);
    let x = dmml::data::matgen::dense_uniform(rows, cols, -1.0, 1.0, 33);
    let bm = BlockMatrix::from_dense(&x, tile);
    let block_bytes = tile * tile * 8 + 16;
    println!(
        "matrix: {rows}x{cols} = {:.1} MiB in {} tiles of {:.0} KiB",
        (rows * cols * 8) as f64 / (1 << 20) as f64,
        bm.num_blocks(),
        block_bytes as f64 / 1024.0
    );

    // The pool holds only 1/4 of the matrix; the rest spills to disk.
    let spill_dir = std::env::temp_dir().join("dmml_ooc_spill");
    let store = FileStore::new(&spill_dir).expect("spill dir");
    let mut pool = BufferPool::new(bm.num_blocks() / 4 * block_bytes, PolicyKind::Lru, store);
    println!(
        "pool: {:.1} MiB budget ({} of {} blocks resident)",
        pool.capacity() as f64 / (1 << 20) as f64,
        bm.num_blocks() / 4,
        bm.num_blocks()
    );

    // Load all tiles (evicting + spilling as the budget is exceeded).
    for (id, b) in bm.iter_blocks() {
        pool.put(PageKey::new(7, id.0 as u32, id.1 as u32), b.clone()).expect("block fits");
    }
    println!(
        "after load: {} resident, {} spilled to {}",
        pool.resident(),
        pool.storage().len(),
        spill_dir.display()
    );
    pool.reset_stats();

    // Out-of-core gemv: stream tiles in block-row order, faulting from disk.
    let v: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.01).sin()).collect();
    let t0 = std::time::Instant::now();
    let mut out = vec![0.0; rows];
    for br in 0..bm.block_rows() {
        for bc in 0..bm.block_cols() {
            let blk = pool
                .get(PageKey::new(7, br as u32, bc as u32))
                .expect("no io errors")
                .expect("block exists");
            let r0 = br * tile;
            let c0 = bc * tile;
            let seg = &v[c0..c0 + blk.cols()];
            let part = dmml::matrix::ops::gemv(&blk, seg);
            for (o, p) in out[r0..r0 + blk.rows()].iter_mut().zip(part) {
                *o += p;
            }
        }
    }
    let elapsed = t0.elapsed();
    let stats = pool.stats();
    println!(
        "out-of-core gemv in {elapsed:?}: {} hits, {} faults from disk, {} evictions (hit rate {:.2})",
        stats.hits, stats.misses, stats.evictions, stats.hit_rate()
    );

    // Verify against the in-memory result.
    let expect = dmml::matrix::ops::gemv(&x, &v);
    let max_diff = out.iter().zip(&expect).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!("max divergence from in-memory gemv: {max_diff:.2e}");
    assert!(max_diff < 1e-9);

    // Second pass with a hot pool: hit rate reflects LRU reuse under a scan.
    pool.reset_stats();
    for br in 0..bm.block_rows() {
        for bc in 0..bm.block_cols() {
            pool.get(PageKey::new(7, br as u32, bc as u32)).unwrap().unwrap();
        }
    }
    println!(
        "second scan pass: hit rate {:.2} (sequential scans defeat LRU when the pool is too small — the E10 effect)",
        pool.stats().hit_rate()
    );
}
