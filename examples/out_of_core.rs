//! Out-of-core linear algebra, two layers deep.
//!
//! First the mechanism: a [`BlockStore`] keeps a matrix as row panels inside
//! a budget-capped buffer pool, and the `ooc` kernels stream those panels —
//! pin → compute → unpin — spilling cold tiles to disk, while staying
//! **bit-identical** to the in-memory kernels.
//!
//! Then the policy: the `dm-lang` executor does the same thing automatically.
//! Give the planner a [`MemoryBudget`] (or set `DMML_MEM_BUDGET`) and it
//! certifies the plan's live-set peak against the budget, planning operators
//! as `blocked` kernels until the plan fits (oversized operands always
//! stream); `explain` shows which nodes went out-of-core plus the memory
//! certificate, and the profile report accounts for the spill traffic.
//!
//! Run with: `cargo run --release --example out_of_core`

use dmml::buffer::{ooc, panel_rows_for, BlockStore, BufferPool, SharedBufferPool};
use dmml::buffer::{policy::PolicyKind, storage::FileStore};
use dmml::lang::{
    exec::Env, explain_with_memory, parser, physical::plan_with_inputs_memory,
    profile_report_with_spill, size::InputSizes, Executor, MemoryBudget,
};
use dmml::matrix::{ops, Matrix};

fn main() {
    // ---- Layer 1: blocked kernels through a spilling pool -----------------
    let (rows, inner, cols) = (1536usize, 1024usize, 768usize);
    let a = dmml::data::matgen::dense_uniform(rows, inner, -1.0, 1.0, 33);
    let b = dmml::data::matgen::dense_uniform(inner, cols, -1.0, 1.0, 34);
    let ws = 8 * (rows * inner + inner * cols + rows * cols);
    let budget = ws / 4; // the pool holds a quarter of the working set
    println!(
        "gemm {rows}x{inner} * {inner}x{cols}: working set {:.1} MiB, pool budget {:.1} MiB (25%)",
        ws as f64 / (1 << 20) as f64,
        budget as f64 / (1 << 20) as f64
    );

    let spill_dir = std::env::temp_dir().join(format!("dmml_ooc_{}", std::process::id()));
    let store = FileStore::new(&spill_dir).expect("spill dir");
    let pool = SharedBufferPool::new(BufferPool::new(budget, PolicyKind::Lru, store));

    let t0 = std::time::Instant::now();
    let sa = BlockStore::from_dense(&pool, 1, &a, panel_rows_for(a.cols(), budget, 8)).unwrap();
    let sb = BlockStore::from_dense(&pool, 2, &b, panel_rows_for(b.cols(), budget, 8)).unwrap();
    let out = ooc::gemm(&sa, &sb, 3, 2).unwrap();
    let product = out.to_dense().unwrap();
    let elapsed = t0.elapsed();
    let st = pool.stats();
    println!(
        "blocked gemm in {elapsed:.2?}: {:.1} MiB spilled to {}, {:.1} MiB faulted back, {} evictions",
        st.spilled_bytes as f64 / (1 << 20) as f64,
        spill_dir.display(),
        st.faulted_bytes as f64 / (1 << 20) as f64,
        st.evictions
    );

    // Bit-identical, not approximately equal: the blocked kernel performs the
    // same floating-point operations in the same order as the in-memory one.
    assert_eq!(product.data(), ops::gemm(&a, &b).data());
    println!("bit-identical to the in-memory gemm ✓");
    for s in [sa, sb, out] {
        s.discard().unwrap();
    }
    pool.audit_quiescent().unwrap();
    println!("pool audit clean: no leaked pins, no leaked bytes\n");

    // ---- Layer 2: the executor plans it for you ---------------------------
    // t(X) %*% (X + X) with X far larger than the budget: the planner marks
    // the ewise add and the crossprod-shaped matmul as blocked kernels.
    let (graph, root) = parser::parse("sum(t(X) %*% (X + X))").unwrap();
    let x = dmml::data::matgen::dense_uniform(2048, 256, -1.0, 1.0, 35);
    let mut sizes = InputSizes::new();
    sizes.declare("X", x.rows(), x.cols(), 1.0);
    let budget = MemoryBudget::bytes(1 << 20); // 1 MiB; X alone is 4 MiB
    println!("executor plan under a {budget} budget (set DMML_MEM_BUDGET for the same effect):");
    println!("{}", explain_with_memory(&graph, root, &sizes, 2, budget));

    let plan = plan_with_inputs_memory(&graph, root, &sizes, 2, budget).unwrap();
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(x.clone()));
    let mut exec = Executor::with_plan(&graph, plan).profiled();
    let got = exec.eval(root, &env).unwrap().as_scalar().unwrap();

    // Same scalar, to the last bit, as the fully in-memory run.
    let mut inmem = Executor::new(&graph);
    let expect = inmem.eval(root, &env).unwrap().as_scalar().unwrap();
    assert_eq!(got.to_bits(), expect.to_bits());
    println!("result {got:.6e} — bit-identical to the unbudgeted executor ✓\n");

    let spill = exec.ooc_pool_stats();
    println!(
        "{}",
        profile_report_with_spill(&graph, root, exec.profile().unwrap(), &sizes, 5, spill.as_ref())
    );
}
