//! Structured tracing across the whole execution stack.
//!
//! One run, one timeline: compression *planning* phases, executor HOP-node
//! spans, `dm-par` worker-task spans (with worker ids), and buffer-pool
//! spill/fault instant events all land in a single Chrome trace-event JSON
//! you can open at `https://ui.perfetto.dev` or `chrome://tracing`.
//!
//! The program runs optimized at degree 4 under a memory budget of 50% of
//! the working set, so the trace shows plan → compute → spill interleaving.
//!
//! Run with: `cargo run --release --example trace_run [out.json]`
//! (or set `DMML_TRACE=out.json` on any executor-driven program).
//! Set `DMML_METRICS_ADDR=127.0.0.1:0` to also serve the stats registry over
//! HTTP at `/metrics` (Prometheus) and `/stats.json` while the run is live;
//! `DMML_METRICS_HOLD_MS` keeps the process alive that long after the run so
//! a scraper can fetch.

use dmml::lang::{
    exec::Env, explain_with_memory, parser, physical::plan_with_inputs_memory, size::InputSizes,
    Executor, MemoryBudget,
};
use dmml::matrix::Matrix;
use dmml::obs::{export, serve::MetricsServer, trace, StatsRegistry};
use std::sync::Arc;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "trace_run.json".to_owned());
    trace::set_enabled(true);

    // Registry first so the scrape endpoint (if enabled) serves live stats.
    let reg = Arc::new(StatsRegistry::new());
    let metrics = MetricsServer::from_env(Arc::clone(&reg)).map(|r| r.expect("bind metrics addr"));
    if let Some(server) = &metrics {
        println!("metrics listening on http://{}/metrics", server.addr());
    }

    // ---- Phase 1: compression planning under a root span ------------------
    // plan_traced emits compress.plan > {estimate, cocode, demote} spans.
    let phase = trace::Span::enter("trace_run", "example");
    let skewed = dmml::data::matgen::low_cardinality(4096, 12, 5, 41);
    let (cplan, _) = dmml::compress::planner::plan_traced(
        &skewed,
        &dmml::compress::planner::CompressionConfig::default(),
    );
    println!("compression plan: {} column groups", cplan.groups.len());

    // ---- Phase 2: optimized execution at degree 4, 50% memory budget ------
    let (graph, root) = parser::parse("sum(t(X) %*% (X + X))").unwrap();
    let x = dmml::data::matgen::dense_uniform(1536, 384, -1.0, 1.0, 42);
    let mut sizes = InputSizes::new();
    sizes.declare("X", x.rows(), x.cols(), 1.0);
    // 50% of X itself: every operator touching X (or a peer of its size)
    // exceeds the budget and is planned blocked, so the pool must spill.
    let budget = MemoryBudget::bytes(8 * x.rows() * x.cols() / 2);
    println!("degree 4, budget {budget} (50% of the input matrix):");
    println!("{}", explain_with_memory(&graph, root, &sizes, 4, budget));

    let plan = plan_with_inputs_memory(&graph, root, &sizes, 4, budget).unwrap();
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(x));
    let mut exec = Executor::with_plan(&graph, plan).profiled().traced();
    let got = exec.eval(root, &env).unwrap().as_scalar().unwrap();
    println!("result: {got:.6e}");
    drop(phase);

    // ---- Export: Chrome trace + machine-readable stats --------------------
    exec.record_stats(&reg);
    trace::record_worker_busy(reg.as_ref());
    let report = reg.report();
    println!("\n{report}");
    println!("prometheus exposition:\n{}", export::prometheus_text(&report));

    let spilled = exec.ooc_pool_stats().map_or(0, |s| s.spilled_bytes);
    drop(exec); // flushes DMML_TRACE, if set
    trace::write_chrome_trace(&out_path).expect("write trace");
    println!("trace written to {out_path} ({spilled} B spilled) — open in ui.perfetto.dev");

    // Stay scrapeable for a moment if asked (CI smoke test), then shut down.
    if let Some(server) = metrics {
        if let Some(ms) =
            std::env::var("DMML_METRICS_HOLD_MS").ok().and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        server.shutdown();
    }
}
