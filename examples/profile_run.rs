//! The observability layer end to end: optimize and execute a GLM gradient
//! with profiling on, print the annotated `explain` tree and the `-stats`
//! style runtime report, then drive the buffer pool and the compression
//! planner with the same stats registry attached and dump everything it saw.
//!
//! Run with: `cargo run --release --example profile_run`
//!
//! Adaptive-cost extras: set `DMML_PROFILE_DIR` to persist this run's kernel
//! throughput profiles (and to price the plan with the calibrated cost model
//! on the next run), and `DMML_METRICS_ADDR=127.0.0.1:0` to serve `/metrics`
//! and `/stats.json` over HTTP while the process is alive
//! (`DMML_METRICS_HOLD_MS` delays exit so a scraper can fetch).

use dmml::buffer::{policy::PolicyKind, storage::MemStore};
use dmml::compress::planner::{compression_report, plan_traced, CompressionConfig};
use dmml::lang::cost::CostModel;
use dmml::lang::physical::plan_with_inputs_profile;
use dmml::lang::rewrite::optimize_traced;
use dmml::lang::size::InputSizes;
use dmml::lang::{explain_with, parser, profile_report};
use dmml::modelsel::search::grid_search;
use dmml::modelsel::SearchTrace;
use dmml::obs::serve::MetricsServer;
use dmml::prelude::*;
use std::sync::Arc;

fn main() {
    let reg = Arc::new(StatsRegistry::new());
    let metrics = MetricsServer::from_env(Arc::clone(&reg)).map(|r| r.expect("bind metrics addr"));
    if let Some(server) = &metrics {
        println!("metrics listening on http://{}/metrics", server.addr());
    }

    // ---- 1. Declarative layer: logistic-regression gradient ----
    // grad = t(X) %*% (sigmoid(X %*% w) - y), written out in the R-like
    // surface syntax. The optimizer fuses t(X) %*% v into a tmv kernel.
    let src = "t(X) %*% (1 / (1 + exp(-(X %*% w))) - y)";
    let (graph, root) = parser::parse(src).expect("parses");

    let (n, d) = (20_000, 16);
    let mut sizes = InputSizes::new();
    sizes.declare("X", n, d, 1.0);
    sizes.declare("w", d, 1, 1.0);
    sizes.declare("y", n, 1, 1.0);

    let (g, r, rtrace) = optimize_traced(&graph, root, &sizes).expect("optimizes");
    rtrace.record(reg.as_ref());
    println!("=== explain (optimized plan) ===");
    print!("{}", explain_with(&g, r, &sizes));
    match (rtrace.cost_before, rtrace.cost_after, rtrace.cost_ratio()) {
        (Some(b), Some(a), Some(ratio)) => {
            println!(
                "estimated cost: {b} -> {a} flops ({:.2}x)",
                1.0 / ratio.max(f64::MIN_POSITIVE)
            )
        }
        _ => println!("estimated cost: unavailable"),
    }
    // With DMML_PROFILE_DIR set and profiles from a previous run on disk,
    // price the same plan through the calibrated model for comparison.
    if let Some(model) = CostModel::from_env() {
        let plan = plan_with_inputs_profile(&g, r, &sizes, 1, &model).expect("plans");
        let cal = dmml::lang::calibrated_cost(&g, r, &sizes, &plan, &model).expect("prices");
        let est = dmml::lang::estimated_cost(&g, r, &sizes).expect("prices");
        println!(
            "calibrated cost: {} observed vs {} static (from persisted kernel profiles)",
            dmml::obs::fmt_ns(cal as u64),
            dmml::obs::fmt_ns(dmml::lang::cost::static_ns(est) as u64),
        );
    }

    // Execute with per-node profiling.
    let x = dmml::data::matgen::dense_uniform(n, d, -1.0, 1.0, 3);
    let w: Vec<f64> = (0..d).map(|i| (i as f64 / d as f64) - 0.5).collect();
    let truth = dmml::matrix::ops::gemv(&x, &w);
    let y: Vec<f64> = truth.iter().map(|&v| if v > 0.0 { 1.0 } else { 0.0 }).collect();
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(x.clone()));
    env.bind("w", Matrix::Dense(Dense::column(&w)));
    env.bind("y", Matrix::Dense(Dense::column(&y)));

    let mut exec = Executor::new(&g).profiled();
    let grad = exec.eval(r, &env).expect("executes");
    exec.record_stats(reg.as_ref());
    println!("\n=== runtime report ===");
    let profile = exec.profile().expect("profiling was enabled");
    print!("{}", profile_report(&g, r, profile, &sizes, 5));
    if let Some(m) = grad.as_dense() {
        println!("gradient norm: {:.4}", m.data().iter().map(|v| v * v).sum::<f64>().sqrt());
    }

    // ---- 2. Buffer pool under a skewed block trace ----
    let mut pool = dmml::buffer::BufferPool::new(64 * 1024, PolicyKind::Lru, MemStore::default())
        .with_recorder(Box::new(Arc::clone(&reg)));
    let num_blocks = 32;
    for b in 0..num_blocks {
        pool.put(PageKey::new(0, b as u32, 0), Dense::identity(16)).expect("fits or evicts");
    }
    for &b in &dmml::data::trace::zipf(num_blocks, 1.0, 2_000, 17) {
        pool.get(PageKey::new(0, b as u32, 0)).expect("no storage error");
    }
    let ps = pool.stats();
    println!("\n=== buffer pool ({} policy) ===", pool.policy_kind());
    println!(
        "hits {}  misses {}  evictions {}  hit rate {:.1}%  peak bytes {}",
        ps.hits,
        ps.misses,
        ps.evictions,
        100.0 * ps.hit_rate(),
        ps.peak_used,
    );

    // ---- 3. Compression planner: estimated vs achieved ----
    let cat = dmml::data::matgen::low_cardinality(n, 3, 8, 11);
    let clustered = dmml::data::matgen::clustered(n, 2, 6, 512, 12);
    let xc = cat.hcat(&clustered).hcat(&dmml::data::matgen::dense_uniform(n, 1, -1.0, 1.0, 13));
    let (plan, ptrace) = plan_traced(&xc, &CompressionConfig::default());
    ptrace.record(reg.as_ref());
    let cm = CompressedMatrix::compress_with_plan(&xc, &plan);
    println!("\n=== compression plan ===");
    print!("{}", compression_report(&plan, &cm));
    println!(
        "planner: {} co-coding merges, {} demotions, wall {}",
        ptrace.merges.len(),
        ptrace.demoted.len(),
        dmml::obs::fmt_ns(ptrace.wall_ns),
    );

    // ---- 4. Model selection with a search trace ----
    let space = ParamSpace::new().grid("l2", &[0.0, 0.01, 0.1, 1.0]);
    let strace = SearchTrace::new();
    let result = grid_search(
        &space,
        strace.wrap(|p, _| {
            let model = LinearRegression::fit(&x, &truth, Solver::NormalEquations, p.get("l2"))
                .expect("fits");
            model.r2(&x, &truth)
        }),
    );
    strace.record(reg.as_ref());
    println!("\n=== model selection ===");
    print!("{}", strace.report(3));
    println!("best l2 = {}", result.best_params.get("l2"));

    // ---- 5. Everything the registry saw ----
    println!("\n=== stats registry ===");
    print!("{}", reg.report());

    // Stay scrapeable for a moment if asked (CI smoke test), then shut down.
    if let Some(server) = metrics {
        if let Some(ms) =
            std::env::var("DMML_METRICS_HOLD_MS").ok().and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        server.shutdown();
    }
}
