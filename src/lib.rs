//! # dmml — Data Management in Machine Learning
//!
//! An umbrella crate re-exporting the whole workspace: a working
//! reproduction of the system landscape surveyed by the SIGMOD 2017 tutorial
//! *"Data Management in Machine Learning: Challenges, Techniques, and
//! Systems"*.
//!
//! The workspace is organized around the tutorial's three pillars:
//!
//! 1. **Declarative ML / linear-algebra systems** — [`lang`] (expression DAG,
//!    rewrites, physical planning), [`compress`] (compressed linear algebra),
//!    [`buffer`] (block buffer pool), on top of the [`matrix`] substrate.
//! 2. **ML inside data systems** — [`factorized`] (learning over joins,
//!    normalized linear algebra, join avoidance) over the [`rel`] relational
//!    engine.
//! 3. **ML lifecycle systems** — [`pipeline`] (feature engineering, metrics,
//!    splits), [`modelsel`] (search strategies, batched feature-subset
//!    exploration, model registry), with algorithms from [`ml`].
//!
//! [`data`] provides the deterministic synthetic generators used by every
//! experiment; [`par`] is the scoped worker pool behind every parallel
//! kernel (degree via `DMML_THREADS`, bit-identical to serial at any
//! degree); [`obs`] is the stats/profiling layer; [`serve`] is the
//! multi-tenant scoring server (plan cache, memory admission,
//! micro-batching) that turns the single-shot pipeline into a long-lived
//! service — see `docs/OPERATIONS.md` for running it.
//!
//! ## Quickstart
//!
//! ```
//! use dmml::prelude::*;
//!
//! let d = dmml::data::labeled::regression(500, 4, 0.01, 7);
//! let model = LinearRegression::fit(&d.x, &d.y, Solver::NormalEquations, 0.0).unwrap();
//! assert!(model.r2(&d.x, &d.y) > 0.99);
//! ```

#![warn(missing_docs)]

pub use dm_buffer as buffer;
pub use dm_compress as compress;
pub use dm_data as data;
pub use dm_factorized as factorized;
pub use dm_lang as lang;
pub use dm_matrix as matrix;
pub use dm_ml as ml;
pub use dm_modelsel as modelsel;
pub use dm_obs as obs;
pub use dm_par as par;
pub use dm_pipeline as pipeline;
pub use dm_rel as rel;
pub use dm_serve as serve;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    pub use dm_buffer::{BufferPool, PageKey};
    pub use dm_compress::{CompressedMatrix, Encoding};
    pub use dm_factorized::{DimTable, NormalizedMatrix};
    pub use dm_lang::{analyze, AnalysisReport, Diagnostic, Env, Executor, Graph, Severity};
    pub use dm_matrix::{BlockMatrix, Coo, Csr, Dense, Matrix};
    pub use dm_ml::glm::{Family, GdConfig};
    pub use dm_ml::linreg::{LinearRegression, Solver};
    pub use dm_ml::logreg::{LogRegConfig, LogisticRegression};
    pub use dm_modelsel::{ModelRegistry, ParamSpace, Params};
    pub use dm_obs::{LogHistogram, StatsRegistry, Timer};
    pub use dm_pipeline::transform::{Pipeline, StandardScaler, Transformer};
    pub use dm_rel::{Table, Value};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_resolve() {
        use crate::prelude::*;
        let d = Dense::identity(2);
        let m: Matrix = d.into();
        assert_eq!(m.nnz(), 2);
        let t = Table::builder("t").int64("a").build();
        assert_eq!(t.num_rows(), 0);
    }
}
